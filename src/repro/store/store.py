"""Versioned on-disk artifact store for :class:`PreparedDataset`.

The paper's pitch is that SPCS needs essentially no preprocessing — but
a production deployment still pays a real prepare cost per process
start: graph build, flat-array packing, station graph, transfer
selection, distance table.  This module makes that cost *once per
dataset* instead of once per process: :func:`save_dataset` serializes
every prepared artifact to a store directory, and :func:`load_dataset`
brings them back without calling a single builder — the time-dependent
graph is *hydrated* from the packed arrays instead of rebuilt from the
timetable, the numpy buffers are memory-mapped zero-copy
(``numpy.load(..., mmap_mode="r")``), and the distance table is
deserialized, never recomputed (``tests/store/test_store_roundtrip.py``
pins builders-never-called with failing monkeypatches).

Store layout (a directory)::

    manifest.json      format version, ServiceConfig (+ its hash), counts
    dataset.bin        timetable, station graph, transfer stations
                       (compact binary, :mod:`repro.store.codec`)
    arrays/<name>.npy  TDGraphArrays buffers + hydration side-tables
                       (route inventory, per-connection train ids),
                       loaded with ``mmap_mode="r"``
    table.npz          distance-table profiles as one CSR point pool
                       (present only when the config builds a table)

Compatibility contract: :data:`FORMAT_VERSION` is bumped on any layout
change and checked on load; the manifest's ``config_hash`` (SHA-256
over the canonical JSON of the :class:`ServiceConfig`) detects both
manifest tampering and loading a store against a different
configuration.  Violations raise :class:`StoreError` — never a wrong
answer.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.functions.algebra import Profile
from repro.functions.piecewise import TravelTimeFunction
from repro.graph.station_graph import StationGraph
from repro.graph.td_arrays import TDGraphArrays, pack_td_graph
from repro.graph.td_model import Edge, TDGraph
from repro.query.distance_table import DistanceTable
from repro.service.config import RUNTIME_FIELDS, ServiceConfig
from repro.service.prepare import PreparedDataset, PrepareStats
from repro.store.codec import CodecError, read_record, write_record
from repro.timetable.types import Connection, Route, Station, Timetable, Train

#: Bumped on any incompatible change to the store layout.
FORMAT_VERSION = 1

_MANIFEST_FORMAT = "repro-artifact-store"

#: TDGraphArrays buffers persisted one ``.npy`` file each (mmap-able).
_ARRAY_FIELDS = (
    "node_station",
    "edge_indptr",
    "edge_target",
    "edge_weight",
    "edge_ttf",
    "ttf_indptr",
    "ttf_dep",
    "ttf_dur",
    "ttf_fifo",
    "conn_indptr",
    "conn_dep",
    "conn_start",
    "transfer_time",
)

#: Side-tables needed to hydrate the object graph without rebuilding.
_SIDE_FIELDS = (
    "conn_train",
    "route_station_indptr",
    "route_stations",
    "route_train_indptr",
    "route_trains",
)


class StoreError(RuntimeError):
    """Raised when a store is missing, corrupt, from an incompatible
    format version, or prepared under a different configuration."""


def config_hash(config: ServiceConfig) -> str:
    """SHA-256 over the canonical JSON form of a :class:`ServiceConfig`.

    Two configs hash equal iff *every* field compares equal — this is
    the manifest's integrity hash (detecting an edited or corrupt
    manifest).  To compare preparation recipes, which is what decides
    whether a store's artifacts fit a config, use
    :func:`prepare_config_hash`.
    """
    canonical = json.dumps(
        dataclasses.asdict(config), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def prepare_config_hash(config: ServiceConfig) -> str:
    """SHA-256 over the *preparation-shaping* fields only.

    Runtime-only fields (:data:`~repro.service.config.RUNTIME_FIELDS`:
    thread count, pool backend/workers, pruning toggles, cache size)
    never change what preparation produces, so two configs differing
    only there share the same prepared artifacts — and hash equal here.
    This is the comparison :func:`load_dataset` applies to
    ``expected_config``.
    """
    fields = {
        key: value
        for key, value in dataclasses.asdict(config).items()
        if key not in RUNTIME_FIELDS
    }
    canonical = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Saving
# ---------------------------------------------------------------------------


def save_dataset(
    prepared: PreparedDataset,
    path: str | Path,
    *,
    config: ServiceConfig | None = None,
) -> Path:
    """Serialize a :class:`PreparedDataset` into a store directory.

    ``config`` is the configuration recorded in the manifest; it
    defaults to ``prepared.config`` but the facade passes the service's
    *current* config so runtime overrides applied after preparation
    (``with_runtime_overrides``) survive a save/load round-trip.

    The directory is created (parents included) and overwritten
    artifact by artifact; any existing manifest is removed *first* and
    the new one is written *last* (atomically, sidecar + rename), so a
    save that crashes — or is signalled — midway, fresh or over an
    older store, leaves a directory that fails to load instead of one
    that masquerades as a complete (possibly mixed-generation) store
    (``tests/store/test_store_roundtrip.py`` pins both the crash and
    the SIGTERM path).  Returns the store path.
    """
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    (root / "manifest.json").unlink(missing_ok=True)
    (root / "manifest.json.tmp").unlink(missing_ok=True)
    timetable = prepared.timetable
    if config is None:
        config = prepared.config

    # The packed arrays double as the graph's serialized adjacency, so
    # a python-kernel dataset (arrays=None) packs here at save time —
    # load hydrates from the buffers either way and never re-packs.
    arrays = (
        prepared.arrays
        if prepared.arrays is not None
        else pack_td_graph(prepared.graph)
    )

    arrays_dir = root / "arrays"
    arrays_dir.mkdir(exist_ok=True)
    for name in _ARRAY_FIELDS:
        np.save(arrays_dir / f"{name}.npy", getattr(arrays, name))
    for name, value in _side_tables(prepared.graph).items():
        np.save(arrays_dir / f"{name}.npy", value)

    write_record(root / "dataset.bin", _dataset_sections(prepared))

    table = prepared.table
    if table is not None:
        _save_table(root / "table.npz", table)
    else:
        # A stale table from a previous save under a different config
        # must not survive next to a fresh manifest.
        (root / "table.npz").unlink(missing_ok=True)

    manifest = {
        "format": _MANIFEST_FORMAT,
        "format_version": FORMAT_VERSION,
        "config": dataclasses.asdict(config),
        "config_hash": config_hash(config),
        "timetable_name": timetable.name,
        "counts": {
            "stations": timetable.num_stations,
            "trains": timetable.num_trains,
            "connections": timetable.num_connections,
            "nodes": arrays.num_nodes,
            "edges": arrays.num_edges,
            "routes": len(prepared.graph.routes),
            "transfer_stations": (
                0
                if prepared.transfer_stations is None
                else int(prepared.transfer_stations.size)
            ),
        },
        "artifacts": {"table": table is not None},
    }
    # Written to a sidecar and renamed into place: a crash or signal at
    # any instant leaves either no manifest (store refuses to load) or
    # a complete one — never a truncated manifest that parses as
    # corruption instead of absence.
    tmp = root / "manifest.json.tmp"
    tmp.write_text(json.dumps(manifest, indent=2) + "\n")
    os.replace(tmp, root / "manifest.json")
    return root


def _side_tables(graph: TDGraph) -> dict[str, np.ndarray]:
    """Arrays that let :func:`load_dataset` hydrate the object graph
    (routes, route-node allocation, connection seed nodes) without
    running route partitioning again."""
    timetable = graph.timetable
    conn_train = [
        c.train
        for station in range(timetable.num_stations)
        for c in timetable.outgoing_connections(station)
    ]
    station_indptr = np.zeros(len(graph.routes) + 1, dtype=np.int64)
    train_indptr = np.zeros(len(graph.routes) + 1, dtype=np.int64)
    route_stations: list[int] = []
    route_trains: list[int] = []
    for route in graph.routes:
        route_stations.extend(route.stations)
        route_trains.extend(route.trains)
        station_indptr[route.id + 1] = len(route_stations)
        train_indptr[route.id + 1] = len(route_trains)
    return {
        "conn_train": np.asarray(conn_train, dtype=np.int64),
        "route_station_indptr": station_indptr,
        "route_stations": np.asarray(route_stations, dtype=np.int64),
        "route_train_indptr": train_indptr,
        "route_trains": np.asarray(route_trains, dtype=np.int64),
    }


def _dataset_sections(prepared: PreparedDataset) -> dict:
    timetable = prepared.timetable
    sg = prepared.station_graph
    connections = np.asarray(
        [
            [c.train, c.dep_station, c.arr_station, c.dep_time, c.arr_time]
            for c in timetable.connections
        ],
        dtype=np.int64,
    ).reshape(-1)
    sections: dict = {
        "meta": np.asarray(
            [
                timetable.period,
                timetable.num_stations,
                timetable.num_trains,
                timetable.num_connections,
                1 if prepared.transfer_stations is not None else 0,
            ],
            dtype=np.int64,
        ),
        "timetable_name": [timetable.name],
        "station_names": [s.name for s in timetable.stations],
        "station_transfer_time": np.asarray(
            [s.transfer_time for s in timetable.stations], dtype=np.int64
        ),
        "train_names": [t.name for t in timetable.trains],
        "connections": connections,
        "sg_indptr": sg.indptr,
        "sg_targets": sg.targets,
        "sg_weights": sg.weights,
        "sg_rev_indptr": sg.rev_indptr,
        "sg_rev_targets": sg.rev_targets,
    }
    if prepared.transfer_stations is not None:
        sections["transfer_stations"] = prepared.transfer_stations
    return sections


def _save_table(path: Path, table: DistanceTable) -> None:
    """Distance table as one CSR point pool: entry ``a * n + b`` of
    ``pair_indptr`` brackets the (dep, arr) points of profile a→b."""
    n = table.num_transfer_stations
    pair_indptr = np.zeros(n * n + 1, dtype=np.int64)
    deps: list[np.ndarray] = []
    arrs: list[np.ndarray] = []
    total = 0
    for a in range(n):
        for b in range(n):
            profile = table.profiles[a][b]
            total += len(profile)
            pair_indptr[a * n + b + 1] = total
            deps.append(profile.deps)
            arrs.append(profile.arrs)
    empty = np.zeros(0, dtype=np.int64)
    np.savez(
        path,
        transfer_stations=table.transfer_stations,
        pair_indptr=pair_indptr,
        point_dep=np.concatenate(deps) if deps else empty,
        point_arr=np.concatenate(arrs) if arrs else empty,
        build_seconds=np.asarray([table.build_seconds], dtype=np.float64),
        build_settled=np.asarray([table.build_settled], dtype=np.int64),
    )


# ---------------------------------------------------------------------------
# Loading
# ---------------------------------------------------------------------------


def load_dataset(
    path: str | Path, *, expected_config: ServiceConfig | None = None
) -> PreparedDataset:
    """Load a store back into a :class:`PreparedDataset`, warm.

    No builder runs: the graph is hydrated from the packed buffers, the
    buffers themselves are memory-mapped read-only, and the distance
    table is deserialized.  ``expected_config``, when given, must share
    the stored config's *preparation recipe*
    (:func:`prepare_config_hash` — a store answers exactly one recipe;
    runtime-only fields are free to differ).  Raises
    :class:`StoreError` on a missing or corrupt store, a
    format-version mismatch, or a recipe mismatch.
    """
    t_start = time.perf_counter()
    root = Path(path)
    manifest = _read_manifest(root)
    config = _config_from_manifest(manifest, root)
    if expected_config is not None and prepare_config_hash(
        expected_config
    ) != prepare_config_hash(config):
        raise StoreError(
            f"{root}: store was prepared under a different config "
            f"(stored recipe {prepare_config_hash(config)[:12]}…, "
            f"expected {prepare_config_hash(expected_config)[:12]}…; "
            f"runtime-only fields never mismatch)"
        )

    try:
        sections = read_record(root / "dataset.bin")
    except FileNotFoundError:
        raise StoreError(f"{root}: missing dataset.bin") from None
    except CodecError as exc:
        raise StoreError(str(exc)) from None

    timetable = _hydrate_timetable(sections)
    station_graph = _hydrate_station_graph(sections)
    transfer_stations = (
        np.asarray(sections["transfer_stations"], dtype=np.int64)
        if int(sections["meta"][4])
        else None
    )

    arrays = _load_arrays(root, timetable, manifest)
    side = _load_side_tables(root)
    graph_t0 = time.perf_counter()
    graph = _hydrate_td_graph(timetable, arrays, side)
    graph_seconds = time.perf_counter() - graph_t0

    table: DistanceTable | None = None
    table_mib = 0.0
    if manifest["artifacts"]["table"]:
        table = _load_table(root / "table.npz", timetable.period)
        table_mib = table.size_mib()

    stats = PrepareStats(
        graph_seconds=graph_seconds,
        station_graph_seconds=0.0,
        pack_seconds=0.0,
        selection_seconds=0.0,
        table_seconds=0.0,
        total_seconds=time.perf_counter() - t_start,
        num_stations=timetable.num_stations,
        num_nodes=arrays.num_nodes,
        num_edges=arrays.num_edges,
        num_connections=timetable.num_connections,
        packed_bytes=arrays.nbytes() if config.kernel == "flat" else 0,
        num_transfer_stations=(
            0 if transfer_stations is None else int(transfer_stations.size)
        ),
        table_mib=table_mib,
        shared_station_graph=False,
        loaded_from_store=True,
    )
    return PreparedDataset(
        timetable=timetable,
        config=config,
        graph=graph,
        station_graph=station_graph,
        arrays=arrays if config.kernel == "flat" else None,
        transfer_stations=transfer_stations,
        table=table,
        stats=stats,
    )


def _read_manifest(root: Path) -> dict:
    manifest_path = root / "manifest.json"
    if not manifest_path.exists():
        raise StoreError(f"{root}: not an artifact store (no manifest.json)")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise StoreError(f"{manifest_path}: corrupt manifest: {exc}") from None
    if manifest.get("format") != _MANIFEST_FORMAT:
        raise StoreError(
            f"{manifest_path}: unexpected format {manifest.get('format')!r}"
        )
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise StoreError(
            f"{root}: store format version {version!r} is not supported "
            f"(this build reads version {FORMAT_VERSION}); re-run prepare"
        )
    return manifest


def _config_from_manifest(manifest: dict, root: Path) -> ServiceConfig:
    try:
        config = ServiceConfig(**manifest["config"])
    except (TypeError, ValueError) as exc:
        raise StoreError(f"{root}: manifest config is invalid: {exc}") from None
    if config_hash(config) != manifest.get("config_hash"):
        raise StoreError(
            f"{root}: config hash mismatch — manifest edited or corrupt"
        )
    return config


def _hydrate_timetable(sections: dict) -> Timetable:
    period = int(sections["meta"][0])
    transfer = sections["station_transfer_time"].tolist()
    stations = [
        Station(id=i, name=name, transfer_time=transfer[i])
        for i, name in enumerate(sections["station_names"])
    ]
    trains = [
        Train(id=i, name=name)
        for i, name in enumerate(sections["train_names"])
    ]
    rows = sections["connections"].reshape(-1, 5).tolist()
    # Positional construction; __post_init__ still validates every row,
    # so corrupt store bytes surface as ValueError, not wrong answers.
    connections = [Connection(*row) for row in rows]
    return Timetable(
        stations=stations,
        trains=trains,
        connections=connections,
        period=period,
        name=sections["timetable_name"][0],
    )


def _hydrate_station_graph(sections: dict) -> StationGraph:
    return StationGraph(
        num_stations=int(sections["meta"][1]),
        indptr=sections["sg_indptr"],
        targets=sections["sg_targets"],
        weights=sections["sg_weights"],
        rev_indptr=sections["sg_rev_indptr"],
        rev_targets=sections["sg_rev_targets"],
    )


def _mmap_buffer(buffer_path: Path) -> np.ndarray:
    """``np.load(..., mmap_mode="r")`` with the module's error contract:
    a missing, truncated or malformed buffer is a :class:`StoreError`,
    never a raw numpy exception."""
    if not buffer_path.exists():
        raise StoreError(f"missing packed buffer {buffer_path.name}")
    try:
        # Zero-copy: the buffer stays on disk; pages fault in on use.
        return np.load(buffer_path, mmap_mode="r")
    except (ValueError, OSError) as exc:
        raise StoreError(f"{buffer_path}: corrupt buffer: {exc}") from None


def _load_arrays(
    root: Path, timetable: Timetable, manifest: dict
) -> TDGraphArrays:
    arrays_dir = root / "arrays"
    buffers: dict[str, np.ndarray] = {}
    for name in _ARRAY_FIELDS:
        buffers[name] = _mmap_buffer(arrays_dir / f"{name}.npy")
    num_nodes = int(manifest["counts"]["nodes"])
    if buffers["edge_indptr"].size != num_nodes + 1:
        raise StoreError(
            f"{root}: edge_indptr has {buffers['edge_indptr'].size} rows, "
            f"manifest says {num_nodes} nodes"
        )
    return TDGraphArrays(
        num_nodes=num_nodes,
        num_stations=timetable.num_stations,
        period=timetable.period,
        **buffers,
    )


def _load_side_tables(root: Path) -> dict[str, np.ndarray]:
    return {
        name: _mmap_buffer(root / "arrays" / f"{name}.npy")
        for name in _SIDE_FIELDS
    }


def _hydrate_td_graph(
    timetable: Timetable, arrays: TDGraphArrays, side: dict[str, np.ndarray]
) -> TDGraph:
    """Reconstruct the object graph from the packed buffers.

    This is hydration, not a rebuild: no route partitioning, no
    connection grouping, no per-leg sorting — the buffers already carry
    the adjacency in relax order, the shared travel-time-function pool
    (with the FIFO flags precomputed), and the route/connection
    side-tables.  The result is structurally identical to
    ``build_td_graph(timetable)``, which the round-trip tests pin by
    comparing python-kernel answers bitwise.
    """
    period = timetable.period

    ttf_indptr = arrays.ttf_indptr.tolist()
    dep_pool = arrays.ttf_dep.tolist()
    dur_pool = arrays.ttf_dur.tolist()
    fifo = arrays.ttf_fifo.tolist()
    ttfs: list[TravelTimeFunction] = []
    for f in range(len(fifo)):
        lo, hi = ttf_indptr[f], ttf_indptr[f + 1]
        ttf = TravelTimeFunction(dep_pool[lo:hi], dur_pool[lo:hi], period)
        # The pack stored the FIFO verdict; skip recomputing it.
        ttf._fifo_sorted = bool(fifo[f])
        ttfs.append(ttf)

    edge_indptr = arrays.edge_indptr.tolist()
    edge_target = arrays.edge_target.tolist()
    edge_weight = arrays.edge_weight.tolist()
    edge_ttf = arrays.edge_ttf.tolist()
    adjacency: list[list[Edge]] = []
    for u in range(arrays.num_nodes):
        lo, hi = edge_indptr[u], edge_indptr[u + 1]
        adjacency.append(
            [
                Edge(
                    edge_target[e],
                    edge_weight[e],
                    None if edge_ttf[e] < 0 else ttfs[edge_ttf[e]],
                )
                for e in range(lo, hi)
            ]
        )

    station_indptr = side["route_station_indptr"].tolist()
    train_indptr = side["route_train_indptr"].tolist()
    route_stations = side["route_stations"].tolist()
    route_trains = side["route_trains"].tolist()
    routes: list[Route] = []
    route_node_ids: dict[tuple[int, int], int] = {}
    num_stations = timetable.num_stations
    for r in range(len(station_indptr) - 1):
        stations = tuple(route_stations[station_indptr[r] : station_indptr[r + 1]])
        trains = tuple(route_trains[train_indptr[r] : train_indptr[r + 1]])
        routes.append(Route(id=r, stations=stations, trains=trains))
        # Same allocation order as build_td_graph: route nodes are
        # handed out route by route, position by position.
        for pos in range(len(stations)):
            route_node_ids[(r, pos)] = num_stations + len(route_node_ids)

    conn_start_node: dict[tuple[int, int], int] = {}
    for train, dep, node in zip(
        side["conn_train"].tolist(),
        arrays.conn_dep.tolist(),
        arrays.conn_start.tolist(),
    ):
        conn_start_node[(train, dep)] = node

    return TDGraph(
        timetable=timetable,
        routes=routes,
        adjacency=adjacency,
        node_station=arrays.node_station.tolist(),
        route_node_ids=route_node_ids,
        conn_start_node=conn_start_node,
    )


def _load_table(path: Path, period: int) -> DistanceTable:
    if not path.exists():
        raise StoreError(f"{path}: missing (manifest promises a table)")
    try:
        with np.load(path) as data:
            transfer_stations = np.asarray(
                data["transfer_stations"], dtype=np.int64
            )
            pair_indptr = data["pair_indptr"]
            point_dep = data["point_dep"]
            point_arr = data["point_arr"]
            build_seconds = float(data["build_seconds"][0])
            build_settled = int(data["build_settled"][0])
    except Exception as exc:  # zipfile/format errors vary by corruption
        raise StoreError(f"{path}: corrupt table: {exc}") from None
    n = int(transfer_stations.size)
    profiles: list[list[Profile]] = []
    for a in range(n):
        row: list[Profile] = []
        for b in range(n):
            lo, hi = int(pair_indptr[a * n + b]), int(pair_indptr[a * n + b + 1])
            row.append(Profile(point_dep[lo:hi], point_arr[lo:hi], period))
        profiles.append(row)
    return DistanceTable(
        transfer_stations=transfer_stations,
        index_of={int(s): i for i, s in enumerate(transfer_stations)},
        profiles=profiles,
        period=period,
        build_seconds=build_seconds,
        build_settled=build_settled,
    )


def describe_store(path: str | Path) -> dict:
    """Manifest plus on-disk sizes, for the CLI and diagnostics."""
    root = Path(path)
    manifest = _read_manifest(root)
    try:
        sizes = {
            "dataset.bin": (root / "dataset.bin").stat().st_size,
            "arrays": sum(
                f.stat().st_size for f in (root / "arrays").glob("*.npy")
            ),
        }
        if (root / "table.npz").exists():
            sizes["table.npz"] = (root / "table.npz").stat().st_size
    except OSError as exc:
        raise StoreError(f"{root}: incomplete store: {exc}") from None
    manifest["sizes_bytes"] = sizes
    manifest["total_bytes"] = sum(sizes.values())
    return manifest
