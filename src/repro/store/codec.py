"""Compact binary record codec for the artifact store.

One ``.bin`` file is a sequence of named sections behind a magic/version
header.  Two section kinds cover everything the store needs outside the
numpy buffers: int64 arrays (timetable numbers, station-graph CSR) and
utf-8 string lists (station/train names).  The format is deliberately
dumb — no compression, no alignment games, little-endian throughout —
so a record can be read with nothing but ``struct`` and ``numpy`` and
survives byte-for-byte comparison across platforms.

Layout::

    magic   8 bytes  b"RPROBIN\\x01"
    u32     section count
    per section:
        u16 + utf-8   section name
        u8            kind (0 = int64 array, 1 = string list)
        kind 0:       u64 element count, then count * 8 bytes (<i8)
        kind 1:       u64 item count, count * u32 byte lengths, then
                      the concatenated utf-8 payloads (one blob, so a
                      100k-name list reads as two bulk slices instead
                      of 100k tiny ones)

:func:`write_record` / :func:`read_record` map a ``dict[str, value]``
(values: 1-D int64 ``np.ndarray`` or ``list[str]``) to and from disk.
Corrupt or truncated input raises :class:`CodecError`.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

MAGIC = b"RPROBIN\x01"

_KIND_INT64 = 0
_KIND_STRINGS = 1


class CodecError(ValueError):
    """Raised for malformed binary records (bad magic, truncation,
    unknown section kinds)."""


def write_record(path: str | Path, sections: dict) -> None:
    """Write named sections to ``path`` (see module doc for the layout).

    ``sections`` values must be 1-D integer arrays (anything
    ``np.asarray`` can coerce to int64) or lists of strings.
    """
    chunks: list[bytes] = [MAGIC, struct.pack("<I", len(sections))]
    for name, value in sections.items():
        encoded_name = name.encode("utf-8")
        chunks.append(struct.pack("<H", len(encoded_name)))
        chunks.append(encoded_name)
        if isinstance(value, list) and all(isinstance(v, str) for v in value):
            encoded = [item.encode("utf-8") for item in value]
            chunks.append(struct.pack("<BQ", _KIND_STRINGS, len(encoded)))
            chunks.append(
                np.asarray([len(e) for e in encoded], dtype="<u4").tobytes()
            )
            chunks.append(b"".join(encoded))
        else:
            array = np.ascontiguousarray(value, dtype="<i8")
            if array.ndim != 1:
                raise CodecError(
                    f"section {name!r} must be 1-D, got shape {array.shape}"
                )
            chunks.append(struct.pack("<BQ", _KIND_INT64, array.size))
            chunks.append(array.tobytes())
    Path(path).write_bytes(b"".join(chunks))


def read_record(path: str | Path) -> dict:
    """Read back a record written by :func:`write_record`."""
    data = Path(path).read_bytes()
    if data[: len(MAGIC)] != MAGIC:
        raise CodecError(f"{path}: bad magic (not a repro store record)")
    offset = len(MAGIC)

    def take(count: int) -> bytes:
        nonlocal offset
        if offset + count > len(data):
            raise CodecError(f"{path}: truncated record")
        piece = data[offset : offset + count]
        offset += count
        return piece

    (num_sections,) = struct.unpack("<I", take(4))
    sections: dict = {}
    for _ in range(num_sections):
        (name_len,) = struct.unpack("<H", take(2))
        name = take(name_len).decode("utf-8")
        (kind,) = struct.unpack("<B", take(1))
        if kind == _KIND_INT64:
            (count,) = struct.unpack("<Q", take(8))
            raw = take(count * 8)
            sections[name] = np.frombuffer(raw, dtype="<i8").astype(
                np.int64, copy=True
            )
        elif kind == _KIND_STRINGS:
            (count,) = struct.unpack("<Q", take(8))
            lengths = np.frombuffer(take(count * 4), dtype="<u4")
            blob = take(int(lengths.sum()))
            items: list[str] = []
            pos = 0
            for item_len in lengths.tolist():
                items.append(blob[pos : pos + item_len].decode("utf-8"))
                pos += item_len
            sections[name] = items
        else:
            raise CodecError(f"{path}: unknown section kind {kind}")
    if offset != len(data):
        raise CodecError(f"{path}: {len(data) - offset} trailing bytes")
    return sections
