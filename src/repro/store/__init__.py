"""Persistent artifact store — prepare once *per dataset*, not per
process (ROADMAP: warm-start serving).

* :mod:`repro.store.store` — :func:`save_dataset` / :func:`load_dataset`
  over a versioned store directory (manifest + mmap'd numpy buffers +
  compact binary), :func:`config_hash`, :func:`describe_store`,
  :class:`StoreError`.
* :mod:`repro.store.codec` — the sectioned binary record format
  (:func:`write_record` / :func:`read_record`, :class:`CodecError`).

The usual entry points are :meth:`repro.TransitService.save` and
:meth:`repro.TransitService.load`; see ``docs/API.md`` ("Persistence
and warm starts").
"""

from repro.store.codec import CodecError, read_record, write_record
from repro.store.store import (
    FORMAT_VERSION,
    StoreError,
    config_hash,
    describe_store,
    load_dataset,
    prepare_config_hash,
    save_dataset,
)

__all__ = [
    "FORMAT_VERSION",
    "StoreError",
    "CodecError",
    "config_hash",
    "prepare_config_hash",
    "describe_store",
    "load_dataset",
    "save_dataset",
    "read_record",
    "write_record",
]
