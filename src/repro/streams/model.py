"""The delay-stream interchange format.

A stream is a named, seeded sequence of timestamped delay batches
against one timetable — the GTFS-RT-shaped input of the replay harness
(:mod:`repro.streams.replay`).  Offsets are seconds from stream start;
each event is exactly one wire-shaped delay batch (the same ``delays``
+ ``slack_per_leg`` the ``/delays`` endpoint accepts), so replaying an
event is one ``apply`` POST.

The JSON document is self-contained and versioned::

    {"v": 1, "kind": "delay-stream", "name": ..., "seed": ...,
     "period": ..., "num_trains": ...,
     "events": [{"t_offset_s": 0.5, "slack_per_leg": 0,
                 "delays": [{"train": 3, "minutes": 7, "from_stop": 2}]}]}

``period``/``num_trains`` pin the timetable the stream was generated
against, so the replay harness can reject a stream aimed at a
different dataset before posting anything.  Field conventions follow
the wire protocol: optional fields are omitted when they hold the
default, never sent as ``null``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.timetable.delays import Delay

STREAM_KIND = "delay-stream"
STREAM_VERSION = 1


class StreamFormatError(ValueError):
    """A stream document that does not match the schema."""


@dataclass(frozen=True, slots=True)
class DelayEvent:
    """One timestamped delay batch."""

    t_offset_s: float
    delays: tuple[Delay, ...]
    slack_per_leg: int = 0

    def __post_init__(self) -> None:
        if self.t_offset_s < 0:
            raise ValueError(
                f"t_offset_s must be >= 0, got {self.t_offset_s}"
            )
        if not self.delays:
            raise ValueError("an event needs at least one delay")
        if self.slack_per_leg < 0:
            raise ValueError(
                f"slack_per_leg must be >= 0, got {self.slack_per_leg}"
            )


@dataclass(frozen=True, slots=True)
class DelayStream:
    """A named, seeded sequence of delay events (offsets ascending)."""

    name: str
    seed: int
    period: int
    num_trains: int
    events: tuple[DelayEvent, ...] = field(default=())

    def __post_init__(self) -> None:
        for earlier, later in zip(self.events, self.events[1:]):
            if later.t_offset_s < earlier.t_offset_s:
                raise ValueError("event offsets must be non-decreasing")

    @property
    def num_events(self) -> int:
        return len(self.events)

    @property
    def duration_s(self) -> float:
        return self.events[-1].t_offset_s if self.events else 0.0

    # -- (de)serialization ---------------------------------------------

    def to_json(self) -> dict:
        events = []
        for event in self.events:
            delays = []
            for d in event.delays:
                item: dict = {"train": d.train, "minutes": d.minutes}
                if d.from_stop:
                    item["from_stop"] = d.from_stop
                delays.append(item)
            obj: dict = {
                "t_offset_s": event.t_offset_s,
                "delays": delays,
            }
            if event.slack_per_leg:
                obj["slack_per_leg"] = event.slack_per_leg
            events.append(obj)
        return {
            "v": STREAM_VERSION,
            "kind": STREAM_KIND,
            "name": self.name,
            "seed": self.seed,
            "period": self.period,
            "num_trains": self.num_trains,
            "events": events,
        }

    @classmethod
    def from_json(cls, obj: object) -> "DelayStream":
        if not isinstance(obj, dict):
            raise StreamFormatError(
                f"stream document must be an object, got {type(obj).__name__}"
            )
        if obj.get("kind") != STREAM_KIND:
            raise StreamFormatError(
                f"kind must be {STREAM_KIND!r}, got {obj.get('kind')!r}"
            )
        if obj.get("v") != STREAM_VERSION:
            raise StreamFormatError(
                f"unsupported stream version {obj.get('v')!r}"
            )
        try:
            events = []
            for i, raw in enumerate(obj.get("events", [])):
                delays = tuple(
                    Delay(
                        train=item["train"],
                        minutes=item["minutes"],
                        from_stop=item.get("from_stop", 0),
                    )
                    for item in raw["delays"]
                )
                events.append(
                    DelayEvent(
                        t_offset_s=float(raw["t_offset_s"]),
                        delays=delays,
                        slack_per_leg=raw.get("slack_per_leg", 0),
                    )
                )
            return cls(
                name=str(obj["name"]),
                seed=int(obj["seed"]),
                period=int(obj["period"]),
                num_trains=int(obj["num_trains"]),
                events=tuple(events),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StreamFormatError(f"malformed stream document: {exc}") from None

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=False) + "\n"
        )

    @classmethod
    def load(cls, path: str | Path) -> "DelayStream":
        try:
            obj = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise StreamFormatError(
                f"stream file {path} is not valid JSON: {exc}"
            ) from None
        return cls.from_json(obj)
