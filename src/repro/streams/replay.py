"""The stream replay harness: interleaved query + delay traffic
against a live backend.

:func:`replay_stream` drives one :class:`~repro.streams.model.DelayStream`
against any :class:`~repro.client.backend.TransitBackend` — in
practice an :class:`~repro.client.http.HttpBackend` pointed at a
``repro serve`` worker or a ``repro serve-fleet`` gateway (the CLI
``repro replay`` path), or a :class:`LocalBackend` in tests.

Architecture: plain threads, no event loop.  The SDK backends are
synchronous, so the harness runs ``query_threads`` closed-loop query
workers (each immediately issues the next journey when the previous
one answers — the closed-loop load the bench and the acceptance
criteria specify) plus the *poster*, which walks the stream's events
on their timestamps (scaled by ``speed``) and posts each batch as one
``apply``.  Every thread gets its **own backend instance** via the
``backends`` factory — the HTTP pool is thread-safe but per-thread
backends keep connection reuse deterministic and failure attribution
per-thread.  Shared state is the :class:`ReplayMetrics` collector
(internally locked) and a stop flag.

The harness *records* failures rather than raising mid-flight — the
whole point is measuring whether the serving stack drops requests
under swap load.  :meth:`ReplayReport.check` then asserts the
operational contract: zero failed requests (query and delay), every
event posted, and — when a bound is configured — maximum observed
swap acknowledgement latency under it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from threading import Event, Thread
from typing import Callable, Sequence

from repro.client.backend import TransitBackend
from repro.client.errors import BackendError
from repro.streams.metrics import ReplayMetrics
from repro.streams.model import DelayStream
from repro.synthetic.workloads import random_station_pairs

__all__ = ["ReplayConfig", "ReplayError", "ReplayReport", "replay_stream"]


class ReplayError(RuntimeError):
    """The replay violated the operational contract (failed requests,
    missing commits, or a swap-pause bound)."""


@dataclass(frozen=True, slots=True)
class ReplayConfig:
    """Knobs of one replay run.

    ``speed`` scales the stream clock: 2.0 replays a 60 s stream in
    30 s.  ``queries_seed`` seeds the query mix — the same
    :func:`~repro.synthetic.workloads.random_station_pairs` generator
    the benchmarks use, which is what makes delay streams composable
    with the existing synthetic workloads.  ``replan`` is forwarded on
    every delay post (``full`` or ``incremental``).
    ``max_swap_seconds`` arms the pause bound in
    :meth:`ReplayReport.check`; ``None`` leaves it unchecked.
    """

    query_threads: int = 2
    queries_seed: int = 0
    departure: int = 480
    speed: float = 1.0
    replan: str = "full"
    max_swap_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.query_threads < 0:
            raise ValueError("query_threads must be >= 0")
        if self.speed <= 0:
            raise ValueError("speed must be positive")
        if self.replan not in ("full", "incremental"):
            raise ValueError(
                f"replan must be 'full' or 'incremental', got {self.replan!r}"
            )


@dataclass(frozen=True, slots=True)
class ReplayReport:
    """Outcome of one replay: the stream identity plus the metrics
    snapshot (:meth:`ReplayMetrics.snapshot` shape)."""

    stream_name: str
    num_events: int
    config: ReplayConfig
    metrics: dict = field(repr=False)

    @property
    def failed_requests(self) -> int:
        return (
            self.metrics["query_failures_total"]
            + self.metrics["delay_failures_total"]
        )

    @property
    def ok(self) -> bool:
        if self.failed_requests:
            return False
        if self.metrics["delay_posts_total"] != self.num_events:
            return False
        if (
            self.config.max_swap_seconds is not None
            and self.metrics["swap_seconds_max"] > self.config.max_swap_seconds
        ):
            return False
        return True

    def check(self) -> "ReplayReport":
        """Assert the operational contract; returns self when clean."""
        problems = []
        if self.metrics["query_failures_total"]:
            problems.append(
                f"{self.metrics['query_failures_total']} failed queries "
                f"(errors: {self.metrics['errors']})"
            )
        if self.metrics["delay_failures_total"]:
            problems.append(
                f"{self.metrics['delay_failures_total']} failed delay posts "
                f"(errors: {self.metrics['errors']})"
            )
        if self.metrics["delay_posts_total"] != self.num_events:
            problems.append(
                f"posted {self.metrics['delay_posts_total']} of "
                f"{self.num_events} events"
            )
        if (
            self.config.max_swap_seconds is not None
            and self.metrics["swap_seconds_max"] > self.config.max_swap_seconds
        ):
            problems.append(
                f"max swap ack {self.metrics['swap_seconds_max']:.3f}s "
                f"exceeds the {self.config.max_swap_seconds:g}s bound"
            )
        if problems:
            raise ReplayError(
                f"replay of {self.stream_name!r} violated the contract: "
                + "; ".join(problems)
            )
        return self

    def to_json(self) -> dict:
        return {
            "stream": self.stream_name,
            "num_events": self.num_events,
            "ok": self.ok,
            "failed_requests": self.failed_requests,
            "metrics": dict(self.metrics),
        }


def replay_stream(
    stream: DelayStream,
    backends: Callable[[], TransitBackend],
    config: ReplayConfig = ReplayConfig(),
) -> ReplayReport:
    """Replay ``stream`` against the target behind ``backends``.

    ``backends`` is called once per thread (``query_threads`` workers
    plus the poster) and each returned backend is closed when its
    thread finishes.  The stream's timetable pins are validated
    against the live dataset before any traffic is sent.
    """
    probe = backends()
    try:
        info = probe.info()
        if info.trains != stream.num_trains:
            raise ReplayError(
                f"stream {stream.name!r} was generated for "
                f"{stream.num_trains} trains but dataset {info.name!r} "
                f"has {info.trains}"
            )
        num_stations = info.stations
    finally:
        probe.close()

    metrics = ReplayMetrics()
    stop = Event()
    pairs = random_station_pairs(
        num_stations, max(256, 4 * config.query_threads), config.queries_seed
    )

    def query_worker(worker: int) -> None:
        backend = backends()
        try:
            k = worker
            while not stop.is_set():
                source, target = pairs[k % len(pairs)]
                k += config.query_threads or 1
                t0 = time.perf_counter()
                try:
                    backend.journey(
                        source, target, departure=config.departure
                    )
                except BackendError as exc:
                    metrics.observe_query_failure(type(exc).__name__)
                else:
                    metrics.observe_query(time.perf_counter() - t0)
        finally:
            backend.close()

    def poster() -> None:
        backend = backends()
        try:
            start = time.perf_counter()
            for event in stream.events:
                due = start + event.t_offset_s / config.speed
                delay = due - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                try:
                    update = backend.apply_delays(
                        list(event.delays),
                        slack_per_leg=event.slack_per_leg,
                        replan=config.replan,
                    )
                except BackendError as exc:
                    metrics.observe_delay_failure(type(exc).__name__)
                else:
                    metrics.observe_delay_post(
                        update.swap_seconds, update.generation
                    )
        finally:
            backend.close()

    t0 = time.perf_counter()
    workers = [
        Thread(target=query_worker, args=(i,), daemon=True)
        for i in range(config.query_threads)
    ]
    for thread in workers:
        thread.start()
    post_thread = Thread(target=poster, daemon=True)
    post_thread.start()
    post_thread.join()
    stop.set()
    for thread in workers:
        thread.join()
    elapsed = time.perf_counter() - t0

    return ReplayReport(
        stream_name=stream.name,
        num_events=stream.num_events,
        config=config,
        metrics=metrics.snapshot(elapsed),
    )
