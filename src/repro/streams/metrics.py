"""Client-side accounting of one stream replay.

The replay harness is multi-threaded (closed-loop query workers plus
one delay poster — :mod:`repro.streams.replay`), so unlike the
server/gateway metrics (loop-confined, lock-free) this collector takes
a real lock: every observation and the final snapshot synchronize on
``_lock``.
"""

from __future__ import annotations

from threading import Lock

__all__ = ["ReplayMetrics"]


class ReplayMetrics:
    """Thread-safe counters for one replay run."""

    def __init__(self) -> None:
        self._lock = Lock()
        self.queries_total = 0  # guarded-by: _lock
        self.query_failures_total = 0  # guarded-by: _lock
        self.query_seconds_sum = 0.0  # guarded-by: _lock
        self.query_seconds_max = 0.0  # guarded-by: _lock
        self.delay_posts_total = 0  # guarded-by: _lock
        self.delay_failures_total = 0  # guarded-by: _lock
        self.swap_seconds = []  # guarded-by: _lock
        self.last_generation = 0  # guarded-by: _lock
        #: ``{error type name: count}`` across both traffic kinds.
        self.errors: dict[str, int] = {}  # guarded-by: _lock

    # -- observation hooks ---------------------------------------------

    def observe_query(self, seconds: float) -> None:
        with self._lock:
            self.queries_total += 1
            self.query_seconds_sum += seconds
            if seconds > self.query_seconds_max:
                self.query_seconds_max = seconds

    def observe_query_failure(self, error: str) -> None:
        with self._lock:
            self.queries_total += 1
            self.query_failures_total += 1
            self.errors[error] = self.errors.get(error, 0) + 1

    def observe_delay_post(self, swap_seconds: float, generation: int) -> None:
        with self._lock:
            self.delay_posts_total += 1
            self.swap_seconds.append(swap_seconds)
            self.last_generation = generation

    def observe_delay_failure(self, error: str) -> None:
        with self._lock:
            self.delay_posts_total += 1
            self.delay_failures_total += 1
            self.errors[error] = self.errors.get(error, 0) + 1

    # -- rendering ------------------------------------------------------

    def snapshot(self, elapsed_seconds: float) -> dict:
        """JSON-safe summary; ``elapsed_seconds`` is the wall clock of
        the whole replay (rates are derived from it)."""
        with self._lock:
            swaps = list(self.swap_seconds)
            queries = self.queries_total
            committed = self.delay_posts_total - self.delay_failures_total
            return {
                "elapsed_seconds": round(elapsed_seconds, 6),
                "queries_total": queries,
                "query_failures_total": self.query_failures_total,
                "query_seconds_mean": round(
                    self.query_seconds_sum / queries, 6
                )
                if queries
                else 0.0,
                "query_seconds_max": round(self.query_seconds_max, 6),
                "queries_per_second": round(
                    queries / elapsed_seconds, 3
                )
                if elapsed_seconds > 0
                else 0.0,
                "delay_posts_total": self.delay_posts_total,
                "delay_failures_total": self.delay_failures_total,
                "replans_per_second": round(
                    committed / elapsed_seconds, 3
                )
                if elapsed_seconds > 0
                else 0.0,
                "swap_seconds_max": round(max(swaps), 6) if swaps else 0.0,
                "swap_seconds_mean": round(sum(swaps) / len(swaps), 6)
                if swaps
                else 0.0,
                "last_generation": self.last_generation,
                "errors": dict(self.errors),
            }
