"""The serving layer: an async multi-dataset query server (stdlib-only).

PRs 1–3 built fast kernels, the prepare-once
:class:`~repro.service.TransitService` facade, and warm-start
persistence; this package turns those prepared artifacts into a
long-lived, concurrent network service — the interactive
journey-planning *service* the paper frames SPCS as the engine for.

* :mod:`repro.server.protocol` — versioned JSON wire schema with
  strict validation and typed error payloads;
* :mod:`repro.server.registry` — named datasets warm-loaded from
  :mod:`repro.store`, with atomic hot delay swaps;
* :mod:`repro.server.executor` — worker-pool execution; concurrent
  journeys micro-batch into one
  :class:`~repro.query.batch.BatchQueryEngine` pass;
* :mod:`repro.server.app` — HTTP routing, bounded admission (fast 503
  on overload), graceful drain;
* :mod:`repro.server.metrics` — request counters, latency histograms,
  cache hit rates.

Entry points: ``repro-transit serve --store DIR --port N`` (CLI) or
embed :class:`TransitServer` directly (``examples/serve_city.py``).
See ``docs/SERVER.md`` for the wire protocol and operational
semantics.
"""

from repro.server.app import MAX_BODY_BYTES, TransitServer
from repro.server.executor import QueryExecutor
from repro.server.http_base import BaseAsyncHttpServer
from repro.server.metrics import LatencyHistogram, ServerMetrics
from repro.server.protocol import (
    DELAY_MODES,
    PROTOCOL_VERSION,
    DelayCommand,
    ProtocolError,
)
from repro.server.registry import (
    DatasetEntry,
    DatasetRegistry,
    RegistryError,
    SwapStateError,
)

__all__ = [
    "DELAY_MODES",
    "MAX_BODY_BYTES",
    "PROTOCOL_VERSION",
    "BaseAsyncHttpServer",
    "DatasetEntry",
    "DatasetRegistry",
    "DelayCommand",
    "LatencyHistogram",
    "ProtocolError",
    "QueryExecutor",
    "RegistryError",
    "ServerMetrics",
    "SwapStateError",
    "TransitServer",
]
