"""Worker-pool query execution with micro-batched journeys.

Every query the server answers is CPU-bound Python, so nothing may run
on the event loop: :class:`QueryExecutor` owns a
:class:`~concurrent.futures.ThreadPoolExecutor` and funnels all
service calls through it (:meth:`run`).

Micro-batching (:meth:`journey`): concurrent single-journey requests
against the *same* service instance are not dispatched one worker job
each.  The first request opens a collection window
(``batch_window`` seconds); every journey for that service arriving
inside the window joins it; when the window closes — or the batch
reaches ``batch_max`` — the whole group runs as **one**
:meth:`TransitService.journey_many` call (one worker job, one
:class:`~repro.query.batch.BatchQueryEngine` pass over the cache
misses) and the answers fan back out to the per-request futures.  Under concurrency this beats
one-job-per-request dispatch (fewer executor round-trips, no GIL
thrash between worker threads running interleaved searches) —
``benchmarks/bench_server_throughput.py`` measures the gap and the
acceptance test pins it.

Correctness notes:

* batches are keyed by service *instance*, so a delay hot swap drains
  naturally — pending requests run against the service they were
  admitted under, later requests batch under the new one;
* a single-request "batch" short-circuits to ``service.journey``;
  grouped requests go through ``service.journey_many``, which answers
  each journey with the very same engine call *and* the same
  per-request result-cache behaviour — answers are bitwise-identical
  either way and grouping never disables caching
  (``tests/server/test_server_e2e.py`` pins HTTP answers against
  direct facade calls);
* ``batch_window=0`` disables micro-batching entirely (the naive
  dispatch the benchmark compares against).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from repro.service.facade import TransitService
from repro.service.model import (
    BatchRequest,
    BatchResponse,
    JourneyRequest,
    JourneyResult,
    MinTransfersRequest,
    MinTransfersResult,
    MulticriteriaRequest,
    MulticriteriaResult,
    ProfileRequest,
    ProfileResult,
    ViaRequest,
    ViaResult,
)

T = TypeVar("T")

#: Shapes eligible for window collection: each maps to a facade method
#: pair ``<shape>`` / ``<shape>_many`` with positional answers.
#: Journeys group because the misses run as one engine pass;
#: multicriteria requests group because every request over one
#: (source, budget) pair shares a single underlying §6 search.
_GROUPABLE_SHAPES = ("journey", "multicriteria")


class _PendingBatch:
    """Requests of one groupable shape collected for one service
    during one window."""

    __slots__ = ("service", "shape", "items", "timer")

    def __init__(self, service: TransitService, shape: str) -> None:
        self.service = service
        self.shape = shape
        self.items: list[tuple[object, asyncio.Future]] = []
        self.timer: asyncio.TimerHandle | None = None


class QueryExecutor:
    """Run service calls on a worker pool; micro-batch journeys.

    ``workers`` sizes the thread pool; ``batch_window`` (seconds) and
    ``batch_max`` bound the journey collection window in time and
    size.  ``metrics``, when given, receives
    ``observe_micro_batch(size)`` per flushed group.
    """

    def __init__(
        self,
        *,
        workers: int = 4,
        batch_window: float = 0.002,
        batch_max: int = 8,
        metrics=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if batch_window < 0:
            raise ValueError(
                f"batch_window must be non-negative, got {batch_window}"
            )
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        self.workers = workers
        self.batch_window = batch_window
        self.batch_max = batch_max
        self.metrics = metrics
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-query"
        )
        #: (shape, id(service)) → open collection window.  The pending
        #: entry holds a strong reference to its service, so the id
        #: cannot be recycled while a window is open.
        self._pending: dict[tuple[str, int], _PendingBatch] = {}
        self._flushes: set[asyncio.Future] = set()

    # -- generic off-loop execution ------------------------------------

    async def run(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` on the worker pool and await its result."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, fn)

    # -- query shapes ---------------------------------------------------

    async def profile(
        self, service: TransitService, request: ProfileRequest
    ) -> ProfileResult:
        return await self.run(lambda: service.profile(request))

    async def batch(
        self, service: TransitService, request: BatchRequest
    ) -> BatchResponse:
        return await self.run(lambda: service.batch(request))

    async def journey(
        self, service: TransitService, request: JourneyRequest
    ) -> JourneyResult:
        """Answer one journey, micro-batching it with concurrent
        journeys against the same service (see module docstring)."""
        return await self._grouped("journey", service, request)

    async def multicriteria(
        self, service: TransitService, request: MulticriteriaRequest
    ) -> MulticriteriaResult:
        """Answer one Pareto query, micro-batching it with concurrent
        multicriteria requests against the same service — grouped
        requests sharing a (source, budget) pair pay one underlying
        search (:meth:`TransitService.multicriteria_many`)."""
        return await self._grouped("multicriteria", service, request)

    async def via(
        self, service: TransitService, request: ViaRequest
    ) -> ViaResult:
        """Via journeys chain two dependent legs — nothing to group."""
        return await self.run(lambda: service.via(request))

    async def min_transfers(
        self, service: TransitService, request: MinTransfersRequest
    ) -> MinTransfersResult:
        return await self.run(lambda: service.min_transfers(request))

    async def _grouped(
        self, shape: str, service: TransitService, request
    ):
        """Collect ``request`` into the open (shape, service) window,
        opening one if needed (see module docstring)."""
        if shape not in _GROUPABLE_SHAPES:
            raise ValueError(f"shape {shape!r} has no grouped dispatch")
        single = getattr(service, shape)
        if self.batch_window <= 0 or self.batch_max <= 1:
            return await self.run(lambda: single(request))
        loop = asyncio.get_running_loop()
        key = (shape, id(service))
        pending = self._pending.get(key)
        if pending is None:
            pending = _PendingBatch(service, shape)
            self._pending[key] = pending
            pending.timer = loop.call_later(
                self.batch_window, self._flush, key
            )
        future: asyncio.Future = loop.create_future()
        pending.items.append((request, future))
        if len(pending.items) >= self.batch_max:
            self._flush(key)
        return await future

    # -- window flushing ------------------------------------------------

    def _flush(self, key: tuple[str, int]) -> None:
        """Close the window ``key`` and dispatch its group as one
        worker job (event-loop thread only)."""
        pending = self._pending.pop(key, None)
        if pending is None:  # already flushed by the size trigger
            return
        if pending.timer is not None:
            pending.timer.cancel()
        service = pending.service
        items = pending.items
        if self.metrics is not None:
            self.metrics.observe_micro_batch(len(items))
        if len(items) == 1:
            request, future = items[0]
            single = getattr(service, pending.shape)
            job = asyncio.ensure_future(
                self.run(lambda: single(request))
            )
            job.add_done_callback(
                lambda task: self._settle_one(task, future)
            )
        else:
            requests = [request for request, _ in items]
            futures = [future for _, future in items]
            many = getattr(service, f"{pending.shape}_many")
            job = asyncio.ensure_future(
                self.run(lambda: many(requests))
            )
            job.add_done_callback(
                lambda task: self._settle_group(task, futures)
            )
        # Keep a strong reference so in-flight flushes survive GC and
        # drain() can await them.
        self._flushes.add(job)
        job.add_done_callback(self._flushes.discard)

    @staticmethod
    def _settle_one(task: asyncio.Future, future: asyncio.Future) -> None:
        if future.done():
            return
        exc = None if task.cancelled() else task.exception()
        if task.cancelled():
            future.cancel()
        elif exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(task.result())

    @staticmethod
    def _settle_group(
        task: asyncio.Future, futures: Sequence[asyncio.Future]
    ) -> None:
        if task.cancelled():
            for future in futures:
                if not future.done():
                    future.cancel()
            return
        exc = task.exception()
        if exc is not None:
            for future in futures:
                if not future.done():
                    future.set_exception(exc)
            return
        results: list = task.result()
        if len(results) != len(futures):
            # The *_many facade calls are contracted to answer
            # positionally, one result per request.  A short list
            # zipped silently would leave the trailing futures pending
            # forever (their HTTP requests would hang until client
            # timeout); a long one means the positional alignment
            # itself is broken.  Fail every unanswered future loudly
            # instead.
            error = RuntimeError(
                f"grouped dispatch returned {len(results)} results for "
                f"{len(futures)} grouped requests — batch answers must "
                f"be positional"
            )
            for i, future in enumerate(futures):
                if future.done():
                    continue
                if i < len(results) and len(results) < len(futures):
                    future.set_result(results[i])
                else:
                    future.set_exception(error)
            return
        for future, result in zip(futures, results):
            if not future.done():
                future.set_result(result)

    # -- lifecycle ------------------------------------------------------

    async def drain(self) -> None:
        """Flush every open window and wait for in-flight jobs."""
        for key in list(self._pending):
            self._flush(key)
        while self._flushes:
            await asyncio.gather(*list(self._flushes), return_exceptions=True)

    async def shutdown(self) -> None:
        """Drain, then stop the worker pool (idempotent)."""
        await self.drain()
        self._pool.shutdown(wait=True)
