"""Named, hot-swappable datasets behind the query server.

A :class:`DatasetRegistry` maps dataset names to
:class:`~repro.service.TransitService` instances.  Services are
immutable, so the registry's one mutation — :meth:`apply_delays`, the
delay hot swap — is a *pointer* swap: a replanned service is built off
the event loop (``TransitService.apply_delays`` re-derives only the
travel-time-dependent artifacts), then the entry's ``service``
reference is replaced in one assignment.

The drain guarantee follows from immutability: every in-flight request
pinned ``entry.service`` at admission time and keeps that (still fully
functional) old service alive until it answers, while requests
admitted after the swap see the new one — zero failed in-flight
requests, no locks on the query path
(``tests/server/test_server_e2e.py::TestHotSwap``).  Swaps against one
dataset are serialized by a per-entry :class:`asyncio.Lock`, so
concurrent delay posts compose (each builds on its predecessor's
timetable) instead of racing.

Registries warm-start from :mod:`repro.store` directories
(:meth:`DatasetRegistry.from_stores` — the ``repro serve`` path) or
wrap in-memory services (:meth:`DatasetRegistry.from_services` —
tests, examples, embedding).
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path
from typing import Awaitable, Callable, Iterable, Mapping, Sequence

from repro.service.facade import TransitService
from repro.timetable.delays import Delay


class SwapStateError(RuntimeError):
    """A two-phase swap request that does not match the entry's state:
    committing/aborting an unknown token, preparing over a pending
    prepare, or committing a prepare whose base generation has moved
    (an ``apply`` landed in between).  The server answers 409."""


class RegistryError(KeyError):
    """An unknown dataset name (the server answers 404)."""

    def __init__(self, name: str, known: Sequence[str]) -> None:
        super().__init__(name)
        self.name = name
        self.known = list(known)

    def __str__(self) -> str:
        return (
            f"unknown dataset {self.name!r} "
            f"(serving: {', '.join(self.known) or 'none'})"
        )


class DatasetEntry:
    """One named dataset: the current service plus swap accounting.

    ``service`` is replaced atomically by delay swaps; readers must
    take one local reference per request and use only that (the
    generation they read stays internally consistent)."""

    __slots__ = (
        "name",
        "service",
        "generation",
        "source",
        "last_swap_seconds",
        "_swap_lock",
        "_prepared",
        "_next_token",
    )

    def __init__(
        self, name: str, service: TransitService, *, source: str = "memory"
    ) -> None:
        self.name = name
        self.service = service
        self.generation = 0
        self.source = source
        self.last_swap_seconds = 0.0
        self._swap_lock = asyncio.Lock()
        #: Pending two-phase swap: ``(token, replanned service, base
        #: generation, replan seconds)`` — at most one at a time.
        self._prepared: tuple[int, TransitService, int, float] | None = None  # guarded-by: _swap_lock
        self._next_token = 0  # guarded-by: _swap_lock

    def describe(self) -> dict:
        """JSON-safe summary for ``/v1/datasets`` (no packed buffers
        are touched)."""
        timetable = self.service.timetable
        return {
            "name": self.name,
            "source": self.source,
            "generation": self.generation,
            "timetable": timetable.name,
            "stations": timetable.num_stations,
            "trains": timetable.num_trains,
            "connections": timetable.num_connections,
            "kernel": self.service.config.kernel,
            "has_distance_table": self.service.table is not None,
        }


class DatasetRegistry:
    """Name → :class:`DatasetEntry` with atomic delay hot swaps."""

    def __init__(self) -> None:
        self._entries: dict[str, DatasetEntry] = {}

    # -- construction ---------------------------------------------------

    def add(
        self, name: str, service: TransitService, *, source: str = "memory"
    ) -> DatasetEntry:
        if name in self._entries:
            raise ValueError(f"dataset {name!r} is already registered")
        if not name or "/" in name:
            raise ValueError(f"invalid dataset name {name!r}")
        entry = DatasetEntry(name, service, source=source)
        self._entries[name] = entry
        return entry

    @classmethod
    def from_stores(
        cls, stores: Iterable[str | Path]
    ) -> "DatasetRegistry":
        """Warm-load one dataset per artifact store directory.

        Dataset names are the stores' directory basenames (two stores
        sharing a basename are rejected — rename one directory).
        :class:`repro.store.StoreError` propagates on a missing or
        corrupt store: a server must not come up half-loaded.
        """
        registry = cls()
        for store in stores:
            path = Path(store)
            name = path.name or path.resolve().name
            if name in registry._entries:
                raise ValueError(
                    f"two stores share the dataset name {name!r}; "
                    f"store directories must have unique basenames"
                )
            registry.add(
                name, TransitService.load(path), source=str(path)
            )
        return registry

    @classmethod
    def from_services(
        cls, services: Mapping[str, TransitService]
    ) -> "DatasetRegistry":
        """Wrap already-built in-memory services (tests, embedding)."""
        registry = cls()
        for name, service in services.items():
            registry.add(name, service)
        return registry

    # -- access ---------------------------------------------------------

    def get(self, name: str) -> DatasetEntry:
        entry = self._entries.get(name)
        if entry is None:
            raise RegistryError(name, self.names())
        return entry

    def names(self) -> list[str]:
        return sorted(self._entries)

    def entries(self) -> list[DatasetEntry]:
        return [self._entries[name] for name in self.names()]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    # -- the hot swap ---------------------------------------------------

    async def apply_delays(
        self,
        name: str,
        delays: Sequence[Delay],
        *,
        slack_per_leg: int = 0,
        replan: str = "full",
        advance: int = 1,
        run: Callable[[Callable[[], TransitService]], Awaitable[TransitService]]
        | None = None,
    ) -> DatasetEntry:
        """Replan ``name`` under ``delays`` and swap the new service in.

        ``run`` executes the (CPU-heavy) replan; the server passes its
        worker pool's :meth:`~repro.server.executor.QueryExecutor.run`
        so the event loop never blocks, while ``None`` runs inline
        (synchronous callers, tests).  The swap itself is one reference
        assignment — in-flight queries keep the service they pinned at
        admission and drain against it.  ``ValueError`` from
        ``apply_delays`` (unknown train, ``from_stop`` past the run)
        propagates for the caller to map to a client error.

        ``replan`` selects the rebuild strategy (full cold rebuild or
        the incremental delta replan — identical answers either way);
        ``advance`` is the number of logical batches this request
        represents: 1 normally, more for a coalesced fleet catch-up
        post, so the entry's generation stays in lockstep with the
        gateway's committed-batch count (``docs/FLEET.md``).
        """
        entry = self.get(name)
        async with entry._swap_lock:
            old = entry.service
            build = lambda: old.apply_delays(  # noqa: E731
                delays, slack_per_leg=slack_per_leg, mode=replan
            )
            t0 = time.perf_counter()
            new = await run(build) if run is not None else build()
            entry.last_swap_seconds = time.perf_counter() - t0
            # The atomic swap: requests admitted from here on resolve
            # entry.service to the replanned instance.
            entry.service = new
            entry.generation += advance
            # Any pending prepared swap replanned the pre-apply
            # generation and could never commit (the stale-generation
            # check would reject it) — discard it now so the dataset
            # does not stay blocked for future prepares.  This is what
            # lets the gateway's catch-up replay (plain applies) heal
            # a worker that was ejected mid-two-phase.
            entry._prepared = None
        return entry

    # -- two-phase swaps ------------------------------------------------

    async def prepare_delays(
        self,
        name: str,
        delays: Sequence[Delay],
        *,
        slack_per_leg: int = 0,
        replan: str = "full",
        run: Callable[[Callable[[], TransitService]], Awaitable[TransitService]]
        | None = None,
    ) -> tuple[int, float]:
        """Phase one of a coordinated swap: replan ``name`` under
        ``delays`` but **keep serving the old timetable**.  Returns
        ``(token, replan_seconds)``; the replanned service is held
        aside until :meth:`commit_prepared` swaps it in atomically (or
        :meth:`abort_prepared` discards it).

        At most one prepare may be pending per dataset — a second one
        raises :class:`SwapStateError` (commit or abort first).  The
        fleet gateway serializes swaps per dataset, so this only
        triggers on out-of-band operator access.
        """
        entry = self.get(name)
        async with entry._swap_lock:
            if entry._prepared is not None:
                raise SwapStateError(
                    f"dataset {name!r} already has a prepared swap "
                    f"(token {entry._prepared[0]}); commit or abort it first"
                )
            old = entry.service
            build = lambda: old.apply_delays(  # noqa: E731
                delays, slack_per_leg=slack_per_leg, mode=replan
            )
            t0 = time.perf_counter()
            new = await run(build) if run is not None else build()
            seconds = time.perf_counter() - t0
            entry._next_token += 1
            token = entry._next_token
            entry._prepared = (token, new, entry.generation, seconds)
        return token, seconds

    async def commit_prepared(self, name: str, token: int) -> DatasetEntry:
        """Phase two: atomically swap the prepared replan in.  The
        swap itself is one reference assignment (microseconds — the
        expensive replan already happened in :meth:`prepare_delays`),
        which is what lets the gateway commit a whole fleet inside one
        brief routing pause.  Raises :class:`SwapStateError` on an
        unknown token or when the base generation moved (an ``apply``
        landed between prepare and commit — the prepared replan would
        silently drop it)."""
        entry = self.get(name)
        async with entry._swap_lock:
            pending = entry._prepared
            if pending is None or pending[0] != token:
                held = "none" if pending is None else f"token {pending[0]}"
                raise SwapStateError(
                    f"dataset {name!r} has no prepared swap with token "
                    f"{token} (pending: {held})"
                )
            _, new, base_generation, seconds = pending
            if base_generation != entry.generation:
                entry._prepared = None
                raise SwapStateError(
                    f"prepared swap for {name!r} is stale: it replanned "
                    f"generation {base_generation} but the dataset is at "
                    f"{entry.generation}; re-prepare"
                )
            entry.service = new
            entry.generation += 1
            entry.last_swap_seconds = seconds
            entry._prepared = None
        return entry

    async def abort_prepared(self, name: str, token: int) -> bool:
        """Discard a prepared replan.  Idempotent: aborting an already
        gone token is ``False``, not an error — the gateway aborts
        broadly when any worker's prepare failed."""
        entry = self.get(name)
        async with entry._swap_lock:
            if entry._prepared is not None and entry._prepared[0] == token:
                entry._prepared = None
                return True
            return False
