"""Versioned JSON wire schema of the query server.

Every request and response body is one JSON object carrying the
protocol version under ``"v"`` (:data:`PROTOCOL_VERSION`; requests may
omit it and get the current version, an explicit mismatch is
rejected).  Request objects map one-to-one onto the service layer's
typed requests:

===============================  =========================================
wire object                      service request
===============================  =========================================
``{"source"}``                   :class:`~repro.service.model.ProfileRequest`
``{"source", "target"}``         :class:`~repro.service.model.JourneyRequest`
``{"journeys", "profiles"}``     :class:`~repro.service.model.BatchRequest`
``{"source", "target",           :class:`~repro.service.model.MulticriteriaRequest`
"departure"}``
``{"source", "via", "target",    :class:`~repro.service.model.ViaRequest`
"departure"}``
``{"source", "target",           :class:`~repro.service.model.MinTransfersRequest`
"departure", "max_transfers"}``
``{"delays"}``                   ``TransitService.apply_delays`` input
===============================  =========================================

Validation is strict: unknown fields, wrong types, and out-of-range
stations/trains are rejected with a typed :class:`ProtocolError`
before any search runs.  Errors serialize to a uniform payload::

    {"v": 1, "error": {"code": "...", "message": "...", "field": ...}}

and carry the HTTP status the server should answer with.  Encoding is
deterministic — all payload numbers are plain ints (minutes since
midnight for times, :data:`~repro.functions.piecewise.INF_TIME` for
unreachable) — which is what lets the end-to-end tests pin server
answers bitwise-identical to direct :class:`TransitService` calls
(``tests/server/test_server_e2e.py``).

Everything here is pure: no I/O, no asyncio — the module is equally
usable by the server, by clients, and by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.query.batch import BatchStats
from repro.service.model import (
    BatchRequest,
    BatchResponse,
    JourneyRequest,
    JourneyResult,
    MinTransfersRequest,
    MinTransfersResult,
    MulticriteriaRequest,
    MulticriteriaResult,
    ProfileRequest,
    ProfileResult,
    QueryStats,
    ViaRequest,
    ViaResult,
)
from repro.timetable.delays import Delay

#: Bumped on any incompatible change to the wire schema.
PROTOCOL_VERSION = 1

#: Cap on wire-requested per-query cores: ``num_threads`` sizes the
#: connection partitioning (allocations scale with it), so an
#: unauthenticated request must not be able to ask for millions.
MAX_NUM_THREADS = 64

#: Cap on wire-requested transfer budgets: the multi-criteria label
#: volume scales linearly with ``max_transfers + 1`` layers, so an
#: unauthenticated request must not be able to ask for thousands.
MAX_MC_TRANSFERS = 16


class ProtocolError(Exception):
    """A request the wire schema rejects, with its HTTP status.

    ``code`` is a stable machine-readable identifier (clients branch on
    it; the exact ``message`` text is not contractual), ``field`` names
    the offending request field when one can be singled out.
    """

    def __init__(
        self,
        code: str,
        message: str,
        *,
        field: str | None = None,
        status: int = 400,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.field = field
        self.status = status

    def payload(self) -> dict:
        error: dict = {"code": self.code, "message": self.message}
        if self.field is not None:
            error["field"] = self.field
        return {"v": PROTOCOL_VERSION, "error": error}


# ---------------------------------------------------------------------------
# Validation primitives
# ---------------------------------------------------------------------------


def _require_object(body: object, *, what: str = "request body") -> dict:
    if not isinstance(body, dict):
        raise ProtocolError(
            "invalid_request",
            f"{what} must be a JSON object, got {type(body).__name__}",
        )
    return body


def _check_version(body: dict) -> None:
    version = body.get("v", PROTOCOL_VERSION)
    if not isinstance(version, int) or isinstance(version, bool):
        raise ProtocolError(
            "invalid_request", "protocol version must be an integer", field="v"
        )
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "unsupported_version",
            f"protocol version {version} is not supported "
            f"(this server speaks version {PROTOCOL_VERSION})",
            field="v",
        )


def _reject_unknown(obj: dict, allowed: frozenset[str], *, where: str) -> None:
    unknown = sorted(set(obj) - allowed)
    if unknown:
        raise ProtocolError(
            "unknown_field",
            f"unknown field(s) {unknown} in {where} "
            f"(allowed: {sorted(allowed)})",
            field=unknown[0],
        )


def _int_field(
    obj: dict,
    name: str,
    *,
    where: str,
    required: bool = False,
    default: int | None = None,
    lo: int | None = None,
    hi: int | None = None,
) -> int | None:
    if name not in obj:
        if required:
            raise ProtocolError(
                "missing_field", f"{where} needs {name!r}", field=name
            )
        return default
    value = obj[name]
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError(
            "invalid_type",
            f"{where}.{name} must be an integer, "
            f"got {type(value).__name__}",
            field=name,
        )
    if lo is not None and value < lo:
        raise ProtocolError(
            "out_of_range", f"{where}.{name} must be >= {lo}, got {value}",
            field=name,
        )
    if hi is not None and value >= hi:
        raise ProtocolError(
            "out_of_range",
            f"{where}.{name} must be < {hi}, got {value}",
            field=name,
        )
    return value


def _station_field(
    obj: dict, name: str, num_stations: int, *, where: str, required: bool = True
) -> int | None:
    return _int_field(
        obj, name, where=where, required=required, lo=0, hi=num_stations
    )


# ---------------------------------------------------------------------------
# Request parsing
# ---------------------------------------------------------------------------

_PROFILE_FIELDS = frozenset({"v", "source", "num_threads", "targets"})
_JOURNEY_FIELDS = frozenset({"v", "source", "target", "departure"})
_BATCH_FIELDS = frozenset({"v", "journeys", "profiles"})
_MULTICRITERIA_FIELDS = frozenset(
    {"v", "source", "target", "departure", "max_transfers"}
)
_VIA_FIELDS = frozenset({"v", "source", "via", "target", "departure"})
_MIN_TRANSFERS_FIELDS = frozenset(
    {"v", "source", "target", "departure", "max_transfers"}
)
_DELAY_FIELDS = frozenset(
    {"v", "delays", "slack_per_leg", "mode", "token", "replan", "generations"}
)
_DELAY_ITEM_FIELDS = frozenset({"train", "minutes", "from_stop"})

#: Hot-swap phases on ``POST /v1/datasets/{name}/delays``.  ``apply``
#: (the default, and the whole protocol before two-phase swaps)
#: replans and swaps in one request.  ``prepare`` replans but keeps
#: serving the old timetable, answering with a ``token``; ``commit``
#: atomically swaps a prepared replan in; ``abort`` discards it.  The
#: fleet gateway drives prepare-on-all → commit-on-all so no client
#: ever observes a mixed old/new answer across workers
#: (``docs/FLEET.md``).
DELAY_MODES = ("apply", "prepare", "commit", "abort")

#: How the worker re-derives travel-time artifacts for a batch.
#: ``full`` (the default and the oracle) cold-rebuilds graph, arrays
#: and table; ``incremental`` delta-replans only what the batch touches
#: (:func:`repro.service.prepare.replan_dataset`) — bitwise-identical
#: answers, much cheaper for small batches (``docs/STREAMS.md``).
DELAY_REPLAN_MODES = ("full", "incremental")


def parse_profile_request(
    body: object, num_stations: int
) -> tuple[ProfileRequest, tuple[int, ...] | None]:
    """Parse a one-to-all request.  Returns the service request plus
    the optional response restriction: ``targets`` limits which
    stations the response encodes profiles for (the search itself is
    always one-to-all)."""
    obj = _require_object(body)
    _check_version(obj)
    _reject_unknown(obj, _PROFILE_FIELDS, where="profile request")
    source = _station_field(obj, "source", num_stations, where="profile")
    num_threads = _int_field(
        obj, "num_threads", where="profile", lo=1, hi=MAX_NUM_THREADS + 1
    )
    targets: tuple[int, ...] | None = None
    if "targets" in obj:
        raw = obj["targets"]
        if not isinstance(raw, list) or not raw:
            raise ProtocolError(
                "invalid_type",
                "profile.targets must be a non-empty list of stations",
                field="targets",
            )
        checked: list[int] = []
        for i, t in enumerate(raw):
            if not isinstance(t, int) or isinstance(t, bool):
                raise ProtocolError(
                    "invalid_type",
                    f"profile.targets[{i}] must be an integer",
                    field="targets",
                )
            if not 0 <= t < num_stations:
                raise ProtocolError(
                    "out_of_range",
                    f"profile.targets[{i}] must be within "
                    f"[0, {num_stations}), got {t}",
                    field="targets",
                )
            checked.append(t)
        targets = tuple(checked)
    return ProfileRequest(source, num_threads=num_threads), targets


def parse_journey_request(body: object, num_stations: int) -> JourneyRequest:
    obj = _require_object(body)
    _check_version(obj)
    _reject_unknown(obj, _JOURNEY_FIELDS, where="journey request")
    source = _station_field(obj, "source", num_stations, where="journey")
    target = _station_field(obj, "target", num_stations, where="journey")
    departure = _int_field(obj, "departure", where="journey", lo=0)
    return JourneyRequest(source, target, departure)


def parse_batch_request(body: object, num_stations: int) -> BatchRequest:
    obj = _require_object(body)
    _check_version(obj)
    _reject_unknown(obj, _BATCH_FIELDS, where="batch request")
    journeys: list[JourneyRequest] = []
    profiles: list[ProfileRequest] = []
    for i, item in enumerate(_item_list(obj, "journeys")):
        sub = _require_object(item, what=f"batch.journeys[{i}]")
        _reject_unknown(
            sub,
            _JOURNEY_FIELDS - {"v"},
            where=f"batch.journeys[{i}]",
        )
        journeys.append(
            JourneyRequest(
                _station_field(
                    sub, "source", num_stations, where=f"batch.journeys[{i}]"
                ),
                _station_field(
                    sub, "target", num_stations, where=f"batch.journeys[{i}]"
                ),
                _int_field(
                    sub, "departure", where=f"batch.journeys[{i}]", lo=0
                ),
            )
        )
    for i, item in enumerate(_item_list(obj, "profiles")):
        sub = _require_object(item, what=f"batch.profiles[{i}]")
        _reject_unknown(
            sub,
            frozenset({"source", "num_threads"}),
            where=f"batch.profiles[{i}]",
        )
        profiles.append(
            ProfileRequest(
                _station_field(
                    sub, "source", num_stations, where=f"batch.profiles[{i}]"
                ),
                num_threads=_int_field(
                    sub,
                    "num_threads",
                    where=f"batch.profiles[{i}]",
                    lo=1,
                    hi=MAX_NUM_THREADS + 1,
                ),
            )
        )
    if not journeys and not profiles:
        raise ProtocolError(
            "invalid_request",
            "batch request needs at least one journey or profile",
        )
    return BatchRequest(journeys=tuple(journeys), profiles=tuple(profiles))


def _item_list(obj: dict, name: str) -> list:
    raw = obj.get(name, [])
    if not isinstance(raw, list):
        raise ProtocolError(
            "invalid_type",
            f"batch.{name} must be a list, got {type(raw).__name__}",
            field=name,
        )
    return raw


def parse_multicriteria_request(
    body: object, num_stations: int
) -> MulticriteriaRequest:
    obj = _require_object(body)
    _check_version(obj)
    _reject_unknown(obj, _MULTICRITERIA_FIELDS, where="multicriteria request")
    source = _station_field(obj, "source", num_stations, where="multicriteria")
    target = _station_field(obj, "target", num_stations, where="multicriteria")
    departure = _int_field(
        obj, "departure", where="multicriteria", required=True, lo=0
    )
    max_transfers = _int_field(
        obj,
        "max_transfers",
        where="multicriteria",
        default=5,
        lo=0,
        hi=MAX_MC_TRANSFERS + 1,
    )
    return MulticriteriaRequest(source, target, departure, max_transfers)


def parse_via_request(body: object, num_stations: int) -> ViaRequest:
    obj = _require_object(body)
    _check_version(obj)
    _reject_unknown(obj, _VIA_FIELDS, where="via request")
    source = _station_field(obj, "source", num_stations, where="via")
    via = _station_field(obj, "via", num_stations, where="via")
    target = _station_field(obj, "target", num_stations, where="via")
    departure = _int_field(obj, "departure", where="via", required=True, lo=0)
    return ViaRequest(source, via, target, departure)


def parse_min_transfers_request(
    body: object, num_stations: int
) -> MinTransfersRequest:
    obj = _require_object(body)
    _check_version(obj)
    _reject_unknown(obj, _MIN_TRANSFERS_FIELDS, where="min-transfers request")
    source = _station_field(obj, "source", num_stations, where="min-transfers")
    target = _station_field(obj, "target", num_stations, where="min-transfers")
    departure = _int_field(
        obj, "departure", where="min-transfers", required=True, lo=0
    )
    max_transfers = _int_field(
        obj,
        "max_transfers",
        where="min-transfers",
        default=5,
        lo=0,
        hi=MAX_MC_TRANSFERS + 1,
    )
    return MinTransfersRequest(source, target, departure, max_transfers)


@dataclass(frozen=True, slots=True)
class DelayCommand:
    """One parsed ``/delays`` request: a swap phase plus its input.

    ``apply``/``prepare`` carry the delay batch (``delays`` non-empty,
    ``token`` ``None``); ``commit``/``abort`` carry only the ``token``
    a prior ``prepare`` answered with (``delays`` empty).

    ``replan`` picks the rebuild strategy (:data:`DELAY_REPLAN_MODES`);
    ``advance`` is how many logical delay batches this request
    represents — always 1 except for coalesced fleet catch-up posts
    (wire field ``generations``), where one apply stands in for a run
    of committed batches and the worker's generation must advance by
    the whole run (``docs/FLEET.md``)."""

    mode: str
    delays: tuple[Delay, ...]
    slack_per_leg: int
    token: int | None
    replan: str = "full"
    advance: int = 1


def parse_delay_request(body: object, num_trains: int) -> DelayCommand:
    """Parse a hot-swap request into a :class:`DelayCommand`.

    ``from_stop`` bounds depend on each train's run length, which only
    ``apply_delays`` knows — the registry surfaces its ``ValueError``
    as a 400, so a bad ``from_stop`` is still a typed client error."""
    obj = _require_object(body)
    _check_version(obj)
    _reject_unknown(obj, _DELAY_FIELDS, where="delay request")
    mode = obj.get("mode", "apply")
    if mode not in DELAY_MODES:
        raise ProtocolError(
            "invalid_request",
            f"delay request mode must be one of {list(DELAY_MODES)}, "
            f"got {mode!r}",
            field="mode",
        )
    if mode in ("commit", "abort"):
        for name in ("delays", "slack_per_leg", "replan", "generations"):
            if name in obj:
                raise ProtocolError(
                    "invalid_request",
                    f"a {mode} request must not carry {name!r} "
                    f"(the prepared replan already holds them)",
                    field=name,
                )
        token = _int_field(
            obj, "token", where=f"{mode} request", required=True, lo=0
        )
        return DelayCommand(mode=mode, delays=(), slack_per_leg=0, token=token)
    if "token" in obj:
        raise ProtocolError(
            "invalid_request",
            f"an {mode} request must not carry 'token' "
            f"(tokens are answered by prepare)",
            field="token",
        )
    replan = obj.get("replan", "full")
    if replan not in DELAY_REPLAN_MODES:
        raise ProtocolError(
            "invalid_request",
            f"delay request replan must be one of {list(DELAY_REPLAN_MODES)}, "
            f"got {replan!r}",
            field="replan",
        )
    if mode == "prepare" and "generations" in obj:
        raise ProtocolError(
            "invalid_request",
            "a prepare request must not carry 'generations' "
            "(coalesced catch-up is apply-only)",
            field="generations",
        )
    advance = _int_field(
        obj, "generations", where="delay request", default=1, lo=1
    )
    raw = obj.get("delays")
    if not isinstance(raw, list) or not raw:
        raise ProtocolError(
            "invalid_request",
            "delay request needs a non-empty 'delays' list",
            field="delays",
        )
    slack = _int_field(
        obj, "slack_per_leg", where="delay request", default=0, lo=0
    )
    delays: list[Delay] = []
    for i, item in enumerate(raw):
        sub = _require_object(item, what=f"delays[{i}]")
        _reject_unknown(sub, _DELAY_ITEM_FIELDS, where=f"delays[{i}]")
        train = _int_field(
            sub, "train", where=f"delays[{i}]", required=True,
            lo=0, hi=num_trains,
        )
        minutes = _int_field(
            sub, "minutes", where=f"delays[{i}]", required=True, lo=0
        )
        from_stop = _int_field(
            sub, "from_stop", where=f"delays[{i}]", default=0, lo=0
        )
        delays.append(Delay(train=train, minutes=minutes, from_stop=from_stop))
    return DelayCommand(
        mode=mode,
        delays=tuple(delays),
        slack_per_leg=slack,
        token=None,
        replan=replan,
        advance=advance,
    )


# ---------------------------------------------------------------------------
# Response encoding
# ---------------------------------------------------------------------------


def _points(profile) -> list[list[int]]:
    return [[int(dep), int(dur)] for dep, dur in profile.connection_points()]


def encode_query_stats(stats: QueryStats) -> dict:
    return {
        "kind": stats.kind,
        "kernel": stats.kernel,
        "num_threads": stats.num_threads,
        "settled_connections": stats.settled_connections,
        "simulated_seconds": stats.simulated_seconds,
        "total_seconds": stats.total_seconds,
        "classification": stats.classification,
        "table_prunes": stats.table_prunes,
        "connection_stops": stats.connection_stops,
        "cache_hit": stats.cache_hit,
    }


def encode_batch_stats(stats: BatchStats) -> dict:
    return {
        "num_queries": stats.num_queries,
        "backend": stats.backend,
        "kernel": stats.kernel,
        "num_workers": stats.num_workers,
        "setup_seconds": stats.setup_seconds,
        "total_seconds": stats.total_seconds,
    }


def encode_journey(result: JourneyResult) -> dict:
    legs = None
    if result.legs is not None:
        legs = [
            {
                "from_station": leg.from_station,
                "to_station": leg.to_station,
                "departure": leg.departure,
                "arrival": leg.arrival,
            }
            for leg in result.legs
        ]
    return {
        "v": PROTOCOL_VERSION,
        "kind": "journey",
        "source": result.source,
        "target": result.target,
        "reachable": result.reachable,
        "profile": _points(result.profile),
        "departure": result.departure,
        "arrival": None if result.arrival is None else int(result.arrival),
        "legs": legs,
        "stats": encode_query_stats(result.stats),
    }


def encode_profile(
    result: ProfileResult,
    *,
    num_stations: int,
    targets: Sequence[int] | None = None,
) -> dict:
    """Encode a one-to-all answer; ``targets`` (from the request)
    restricts which stations' profiles travel over the wire."""
    stations = range(num_stations) if targets is None else targets
    profiles = {
        str(t): _points(result.profile(t))
        for t in stations
        if t != result.source
    }
    return {
        "v": PROTOCOL_VERSION,
        "kind": "profile",
        "source": result.source,
        "profiles": profiles,
        "stats": encode_query_stats(result.stats),
    }


def encode_batch(response: BatchResponse, *, num_stations: int) -> dict:
    return {
        "v": PROTOCOL_VERSION,
        "kind": "batch",
        "journeys": [encode_journey(j) for j in response.journeys],
        "profiles": [
            encode_profile(p, num_stations=num_stations)
            for p in response.profiles
        ],
        "stats": encode_batch_stats(response.stats),
    }


def encode_multicriteria(result: MulticriteriaResult) -> dict:
    legs = None
    if result.legs is not None:
        legs = [
            {
                "from_station": leg.from_station,
                "to_station": leg.to_station,
                "departure": leg.departure,
                "arrival": leg.arrival,
            }
            for leg in result.legs
        ]
    return {
        "v": PROTOCOL_VERSION,
        "kind": "multicriteria",
        "source": result.source,
        "target": result.target,
        "departure": result.departure,
        "max_transfers": result.max_transfers,
        "reachable": result.reachable,
        "options": [
            [int(opt.transfers), int(opt.arrival)] for opt in result.options
        ],
        "legs": legs,
        "stats": encode_query_stats(result.stats),
    }


def encode_via(result: ViaResult) -> dict:
    legs = None
    if result.legs is not None:
        legs = [
            {
                "from_station": leg.from_station,
                "to_station": leg.to_station,
                "departure": leg.departure,
                "arrival": leg.arrival,
            }
            for leg in result.legs
        ]
    return {
        "v": PROTOCOL_VERSION,
        "kind": "via",
        "source": result.source,
        "via": result.via,
        "target": result.target,
        "departure": result.departure,
        "via_arrival": int(result.via_arrival),
        "arrival": int(result.arrival),
        "reachable": result.reachable,
        "legs": legs,
        "stats": encode_query_stats(result.stats),
    }


def encode_min_transfers(result: MinTransfersResult) -> dict:
    legs = None
    if result.legs is not None:
        legs = [
            {
                "from_station": leg.from_station,
                "to_station": leg.to_station,
                "departure": leg.departure,
                "arrival": leg.arrival,
            }
            for leg in result.legs
        ]
    return {
        "v": PROTOCOL_VERSION,
        "kind": "min_transfers",
        "source": result.source,
        "target": result.target,
        "departure": result.departure,
        "max_transfers": result.max_transfers,
        "reachable": result.reachable,
        "transfers": (
            None if result.transfers is None else int(result.transfers)
        ),
        "arrival": int(result.arrival),
        "legs": legs,
        "stats": encode_query_stats(result.stats),
    }
