"""The asyncio HTTP front end (stdlib-only, HTTP/1.1 keep-alive).

Endpoints (all bodies JSON, see :mod:`repro.server.protocol` and
``docs/SERVER.md``)::

    GET  /healthz                     liveness + served dataset names
    GET  /metrics                     ServerMetrics snapshot
    GET  /v1/datasets                 per-dataset summaries
    POST /v1/datasets/{name}/delays   hot delay swap (replan + swap)
    POST /v1/{name}/profile           one-to-all profile search
    POST /v1/{name}/journey           station-to-station query
    POST /v1/{name}/batch             batched workload

Design:

* **No blocking on the loop** — every service call runs on the
  :class:`~repro.server.executor.QueryExecutor` worker pool; the loop
  only parses, routes, and serializes.
* **Bounded admission** — at most ``max_inflight`` query requests (and
  delay swaps, which are worker-pool jobs like any query) are in
  flight; the next one is answered ``503 overloaded`` immediately
  (closed-loop clients back off instead of queueing into timeout).
  ``/healthz`` and ``/metrics`` are always admitted.
* **Hot swaps drain, never break** — a query pins its dataset's
  service reference at admission; the swap replaces the reference for
  *later* requests only (:mod:`repro.server.registry`).
* **Graceful shutdown** — :meth:`TransitServer.shutdown` stops
  accepting, lets in-flight requests finish, flushes the executor's
  micro-batch windows, then stops the pool.  ``repro serve`` wires
  SIGINT/SIGTERM to exactly this path and exits 0.
"""

from __future__ import annotations

import asyncio
import json
import time

from repro.server.executor import QueryExecutor
from repro.server.metrics import ServerMetrics
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    encode_batch,
    encode_journey,
    encode_profile,
    parse_batch_request,
    parse_delay_request,
    parse_journey_request,
    parse_profile_request,
)
from repro.server.registry import DatasetRegistry, RegistryError

#: Request bodies above this are rejected with 413 before parsing.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Sentinel: the request declared a Content-Length over the cap and
#: its body was never read off the socket.
_BODY_TOO_LARGE = object()

_QUERY_SHAPES = ("profile", "journey", "batch")

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class TransitServer:
    """One listening socket over one :class:`DatasetRegistry`."""

    def __init__(
        self,
        registry: DatasetRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        max_inflight: int = 64,
        batch_window: float = 0.002,
        batch_max: int = 8,
        retry_after: float = 1.0,
        executor: QueryExecutor | None = None,
        metrics: ServerMetrics | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if retry_after < 0:
            raise ValueError(
                f"retry_after must be non-negative, got {retry_after}"
            )
        self.registry = registry
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self.max_inflight = max_inflight
        #: Backoff hint (seconds) sent as ``Retry-After`` on every
        #: retriable 503; cooperative clients (repro.client) honor it.
        self.retry_after = retry_after
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self.executor = (
            executor
            if executor is not None
            else QueryExecutor(
                workers=workers,
                batch_window=batch_window,
                batch_max=batch_max,
                metrics=self.metrics,
            )
        )
        if self.executor.metrics is None:
            self.executor.metrics = self.metrics
        self._server: asyncio.base_events.Server | None = None
        self._inflight = 0
        self._draining = False
        #: Connections currently parked between requests (waiting in
        #: readline); shutdown force-closes exactly these so idle
        #: keep-alive clients cannot stall the drain.
        self._idle_connections: set[asyncio.StreamWriter] = set()

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` holds the bound
        port afterwards (pass ``port=0`` for an ephemeral one)."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight requests,
        flush micro-batch windows, stop the worker pool.

        Idle keep-alive connections are force-closed once the last
        in-flight request finished — their handlers are parked in a
        read that nothing else would ever wake, and (from Python
        3.12.1) ``wait_closed`` waits for every handler to return.
        Handlers that are mid-request finish their response first
        (draining breaks their keep-alive loop)."""
        self._draining = True
        if self._server is not None:
            self._server.close()
        while self._inflight > 0:
            await asyncio.sleep(0.005)
        for writer in list(self._idle_connections):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()
        await self.executor.shutdown()

    # -- connection handling -------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                # Parked between requests: eligible for force-close by
                # a draining shutdown.
                self._idle_connections.add(writer)
                try:
                    request = await self._read_request(reader)
                finally:
                    self._idle_connections.discard(writer)
                if request is None:
                    break
                method, path, headers, body = request
                if body is _BODY_TOO_LARGE:
                    status, payload, extra = 413, _error(
                        "payload_too_large",
                        f"request body exceeds {MAX_BODY_BYTES} bytes",
                    ), {}
                    # The oversized body was never read off the socket,
                    # so the connection cannot be reused.
                    keep_alive = False
                else:
                    status, payload, extra = await self._dispatch(
                        method, path, headers, body
                    )
                    keep_alive = (
                        headers.get("connection", "").lower() != "close"
                        and not self._draining
                    )
                data = json.dumps(payload).encode("utf-8")
                extra_lines = "".join(
                    f"{name}: {value}\r\n" for name, value in extra.items()
                )
                head = (
                    f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                    f"{extra_lines}"
                    f"\r\n"
                ).encode("latin-1")
                writer.write(head + data)
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            ValueError,  # malformed request line / headers
        ):
            pass  # client went away or spoke garbage; just close
        finally:
            self._idle_connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        """Parse one HTTP/1.1 request; ``None`` on a clean EOF.  An
        oversized body is left unread and signalled with the
        :data:`_BODY_TOO_LARGE` sentinel (answered 413 upstream)."""
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise asyncio.IncompleteReadError(line, None)
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            return method, path, headers, _BODY_TOO_LARGE
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    # -- routing --------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, dict, dict]:
        """Route one request; returns ``(status, payload, extra
        response headers)``.  Handlers return 2-tuples unless they have
        headers to add (the 503 rejections carry ``Retry-After``)."""
        endpoint = self._endpoint_label(method, path)
        self.metrics.observe_request(endpoint)
        self._observe_client_retry(headers)
        t0 = time.perf_counter()
        extra: dict = {}
        try:
            answer = await self._route(method, path, body, endpoint)
            if len(answer) == 3:
                status, payload, extra = answer
            else:
                status, payload = answer
        except ProtocolError as exc:
            status, payload = exc.status, exc.payload()
        except RegistryError as exc:
            status, payload = 404, _error("unknown_dataset", str(exc))
        except ValueError as exc:
            # Domain validation the protocol layer cannot see (e.g.
            # Delay.from_stop past the train's run).
            status, payload = 400, _error("invalid_request", str(exc))
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            status, payload = 500, _error(
                "internal", f"{type(exc).__name__}: {exc}"
            )
        self.metrics.observe_response(
            endpoint, status, time.perf_counter() - t0
        )
        return status, payload, extra

    def _observe_client_retry(self, headers: dict[str, str]) -> None:
        """Count requests that declare themselves retries (the
        ``X-Retry-Attempt`` header repro.client sends with its 503
        backoff retries) in ``retries_observed_total``."""
        raw = headers.get("x-retry-attempt")
        if raw is None:
            return
        try:
            attempt = int(raw)
        except ValueError:
            return
        if attempt > 0:
            self.metrics.observe_client_retry()

    def _endpoint_label(self, method: str, path: str) -> str:
        """Low-cardinality endpoint label for metrics (dataset names
        are folded out of the label; per-dataset detail lives in the
        registry section of the snapshot)."""
        parts = [p for p in path.split("?")[0].split("/") if p]
        if parts == ["healthz"] or parts == ["metrics"]:
            return f"{method} /{parts[0]}"
        if parts[:2] == ["v1", "datasets"]:
            if len(parts) == 2:
                return "GET /v1/datasets"
            return "POST /v1/datasets/{name}/delays"
        if len(parts) == 3 and parts[0] == "v1" and parts[2] in _QUERY_SHAPES:
            return f"POST /v1/{{name}}/{parts[2]}"
        return f"{method} <unmatched>"

    async def _route(
        self, method: str, path: str, body: bytes, endpoint: str
    ) -> tuple:
        parts = [p for p in path.split("?")[0].split("/") if p]

        if parts == ["healthz"]:
            _require_method(method, "GET")
            return 200, {
                "v": PROTOCOL_VERSION,
                "status": "draining" if self._draining else "ok",
                "datasets": self.registry.names(),
            }

        if parts == ["metrics"]:
            _require_method(method, "GET")
            return 200, {
                "v": PROTOCOL_VERSION,
                **self.metrics.snapshot(self.registry),
            }

        if parts == ["v1", "datasets"]:
            _require_method(method, "GET")
            return 200, {
                "v": PROTOCOL_VERSION,
                "datasets": [
                    entry.describe() for entry in self.registry.entries()
                ],
            }

        if (
            len(parts) == 4
            and parts[:2] == ["v1", "datasets"]
            and parts[3] == "delays"
        ):
            _require_method(method, "POST")
            return await self._handle_delays(parts[2], body, endpoint)

        if len(parts) == 3 and parts[0] == "v1" and parts[2] in _QUERY_SHAPES:
            _require_method(method, "POST")
            return await self._handle_query(parts[1], parts[2], body, endpoint)

        raise ProtocolError(
            "unknown_route", f"no route for {method} {path}", status=404
        )

    # -- handlers -------------------------------------------------------

    def _admit(self, endpoint: str) -> tuple[int, dict, dict] | None:
        """Admission control: fast 503 instead of an unbounded queue.
        Returns the rejection response (with its ``Retry-After``
        backoff hint), or ``None`` when admitted."""
        if self._draining:
            self.metrics.observe_reject(endpoint)
            return 503, _error(
                "draining", "server is shutting down", retriable=True
            ), self._retry_after_header()
        if self._inflight >= self.max_inflight:
            self.metrics.observe_reject(endpoint)
            return 503, _error(
                "overloaded",
                f"{self._inflight} requests in flight "
                f"(max_inflight={self.max_inflight}); retry",
                retriable=True,
            ), self._retry_after_header()
        return None

    def _retry_after_header(self) -> dict:
        # RFC 9110 wants integral delta-seconds; emit sub-second
        # values as-is anyway (our own client parses floats, and a
        # strict parser falling back to "retry later" is still right).
        value = self.retry_after
        rendered = str(int(value)) if float(value).is_integer() else f"{value:g}"
        return {"Retry-After": rendered}

    async def _handle_query(
        self, name: str, shape: str, body: bytes, endpoint: str
    ) -> tuple:
        rejection = self._admit(endpoint)
        if rejection is not None:
            return rejection
        # Pin the service *before* any await: a hot swap mid-request
        # must not change what this request runs against.
        entry = self.registry.get(name)
        service = entry.service
        num_stations = service.timetable.num_stations
        self._inflight += 1
        self.metrics.inflight = self._inflight
        try:
            parsed = _parse_body(body)
            if shape == "profile":
                request, targets = parse_profile_request(parsed, num_stations)
                result = await self.executor.profile(service, request)
                return 200, encode_profile(
                    result, num_stations=num_stations, targets=targets
                )
            if shape == "journey":
                request = parse_journey_request(parsed, num_stations)
                result = await self.executor.journey(service, request)
                return 200, encode_journey(result)
            request = parse_batch_request(parsed, num_stations)
            response = await self.executor.batch(service, request)
            return 200, encode_batch(response, num_stations=num_stations)
        finally:
            self._inflight -= 1
            self.metrics.inflight = self._inflight

    async def _handle_delays(
        self, name: str, body: bytes, endpoint: str
    ) -> tuple:
        # Replans are CPU-heavy worker-pool jobs like any query: they
        # obey the same admission bound (a swap storm must not starve
        # queries) and a draining server starts no new ones.
        rejection = self._admit(endpoint)
        if rejection is not None:
            return rejection
        self._inflight += 1
        self.metrics.inflight = self._inflight
        try:
            entry = self.registry.get(name)
            delays, slack = parse_delay_request(
                _parse_body(body), entry.service.timetable.num_trains
            )
            entry = await self.registry.apply_delays(
                name,
                delays,
                slack_per_leg=slack,
                run=self.executor.run,
            )
            self.metrics.observe_swap(name, entry.last_swap_seconds)
            return 200, {
                "v": PROTOCOL_VERSION,
                "dataset": name,
                "generation": entry.generation,
                "num_delays": len(delays),
                "slack_per_leg": slack,
                "swap_seconds": round(entry.last_swap_seconds, 6),
            }
        finally:
            self._inflight -= 1
            self.metrics.inflight = self._inflight


def _parse_body(body: bytes) -> object:
    if not body:
        raise ProtocolError("invalid_request", "request body is empty")
    try:
        return json.loads(body)
    except json.JSONDecodeError as exc:
        raise ProtocolError(
            "invalid_json", f"request body is not valid JSON: {exc}"
        ) from None


def _require_method(method: str, expected: str) -> None:
    if method != expected:
        raise ProtocolError(
            "method_not_allowed",
            f"use {expected} for this endpoint, not {method}",
            status=405,
        )


def _error(code: str, message: str, *, retriable: bool = False) -> dict:
    payload = ProtocolError(code, message).payload()
    if retriable:
        payload["error"]["retriable"] = True
    return payload
