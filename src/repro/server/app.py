"""The asyncio HTTP front end (stdlib-only, HTTP/1.1 keep-alive).

Endpoints (all bodies JSON, see :mod:`repro.server.protocol` and
``docs/SERVER.md``)::

    GET  /healthz                     readiness + liveness + datasets
    GET  /metrics                     ServerMetrics snapshot
    GET  /v1/datasets                 per-dataset summaries
    POST /v1/datasets/{name}/delays   hot delay swap (apply, or the
                                      two-phase prepare/commit/abort
                                      the fleet gateway drives)
    POST /v1/{name}/profile           one-to-all profile search
    POST /v1/{name}/journey           station-to-station query
    POST /v1/{name}/batch             batched workload
    POST /v1/{name}/multicriteria     (transfers, arrival) Pareto front
    POST /v1/{name}/via               source → via → target journey
    POST /v1/{name}/min-transfers     fewest-transfers journey

Design:

* **No blocking on the loop** — every service call runs on the
  :class:`~repro.server.executor.QueryExecutor` worker pool; the loop
  only parses, routes, and serializes.  The HTTP mechanics (keep-alive
  loop, request reading, graceful drain) live in
  :class:`~repro.server.http_base.BaseAsyncHttpServer`, shared with
  the fleet gateway.
* **Bounded admission** — at most ``max_inflight`` query requests (and
  delay swaps, which are worker-pool jobs like any query) are in
  flight; the next one is answered ``503 overloaded`` immediately
  (closed-loop clients back off instead of queueing into timeout).
  ``/healthz`` and ``/metrics`` are always admitted.
* **Hot swaps drain, never break** — a query pins its dataset's
  service reference at admission; the swap replaces the reference for
  *later* requests only (:mod:`repro.server.registry`).
* **Graceful shutdown distinguishes readiness from liveness** —
  :meth:`~BaseAsyncHttpServer.begin_drain` flips ``/healthz`` to
  ``"draining"`` while requests still succeed, so the fleet gateway
  (or any LB) stops routing *before* the hard drain starts
  fast-503ing; :meth:`~BaseAsyncHttpServer.shutdown` then waits out
  ``drain_grace``, finishes in-flight requests, flushes the executor's
  micro-batch windows, and stops the pool.  ``repro serve`` wires
  SIGINT/SIGTERM to exactly this path and exits 0.
"""

from __future__ import annotations

import json
import time

from repro.server.executor import QueryExecutor
from repro.server.http_base import MAX_BODY_BYTES, BaseAsyncHttpServer
from repro.server.metrics import ServerMetrics
from repro.server.protocol import (
    PROTOCOL_VERSION,
    DelayCommand,
    ProtocolError,
    encode_batch,
    encode_journey,
    encode_min_transfers,
    encode_multicriteria,
    encode_profile,
    encode_via,
    parse_batch_request,
    parse_delay_request,
    parse_journey_request,
    parse_min_transfers_request,
    parse_multicriteria_request,
    parse_profile_request,
    parse_via_request,
)
from repro.server.registry import DatasetRegistry, RegistryError, SwapStateError

__all__ = ["MAX_BODY_BYTES", "TransitServer"]

_QUERY_SHAPES = (
    "profile",
    "journey",
    "batch",
    "multicriteria",
    "via",
    "min-transfers",
)


class TransitServer(BaseAsyncHttpServer):
    """One listening socket over one :class:`DatasetRegistry`."""

    def __init__(
        self,
        registry: DatasetRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        max_inflight: int = 64,
        batch_window: float = 0.002,
        batch_max: int = 8,
        retry_after: float = 1.0,
        drain_grace: float = 0.0,
        executor: QueryExecutor | None = None,
        metrics: ServerMetrics | None = None,
    ) -> None:
        super().__init__(host=host, port=port, drain_grace=drain_grace)
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if retry_after < 0:
            raise ValueError(
                f"retry_after must be non-negative, got {retry_after}"
            )
        self.registry = registry
        self.max_inflight = max_inflight
        #: Backoff hint (seconds) sent as ``Retry-After`` on every
        #: retriable 503; cooperative clients (repro.client) honor it.
        self.retry_after = retry_after
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self.executor = (
            executor
            if executor is not None
            else QueryExecutor(
                workers=workers,
                batch_window=batch_window,
                batch_max=batch_max,
                metrics=self.metrics,
            )
        )
        if self.executor.metrics is None:
            self.executor.metrics = self.metrics

    async def _post_drain(self) -> None:
        await self.executor.shutdown()

    # -- routing --------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, dict, dict]:
        """Route one request; returns ``(status, payload, extra
        response headers)``.  Handlers return 2-tuples unless they have
        headers to add (the 503 rejections carry ``Retry-After``)."""
        endpoint = self._endpoint_label(method, path)
        self.metrics.observe_request(endpoint)
        self._observe_client_retry(headers)
        t0 = time.perf_counter()
        extra: dict = {}
        try:
            answer = await self._route(method, path, body, endpoint)
            if len(answer) == 3:
                status, payload, extra = answer
            else:
                status, payload = answer
        except ProtocolError as exc:
            status, payload = exc.status, exc.payload()
        except RegistryError as exc:
            status, payload = 404, _error("unknown_dataset", str(exc))
        except SwapStateError as exc:
            status, payload = 409, _error("swap_conflict", str(exc))
        except ValueError as exc:
            # Domain validation the protocol layer cannot see (e.g.
            # Delay.from_stop past the train's run).
            status, payload = 400, _error("invalid_request", str(exc))
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            status, payload = 500, _error(
                "internal", f"{type(exc).__name__}: {exc}"
            )
        self.metrics.observe_response(
            endpoint, status, time.perf_counter() - t0
        )
        return status, payload, extra

    def _observe_client_retry(self, headers: dict[str, str]) -> None:
        """Count requests that declare themselves retries (the
        ``X-Retry-Attempt`` header repro.client sends with its 503
        backoff retries) in ``retries_observed_total``."""
        raw = headers.get("x-retry-attempt")
        if raw is None:
            return
        try:
            attempt = int(raw)
        except ValueError:
            return
        if attempt > 0:
            self.metrics.observe_client_retry()

    def _endpoint_label(self, method: str, path: str) -> str:
        """Low-cardinality endpoint label for metrics (dataset names
        are folded out of the label; per-dataset detail lives in the
        registry section of the snapshot)."""
        parts = [p for p in path.split("?")[0].split("/") if p]
        if parts == ["healthz"] or parts == ["metrics"]:
            return f"{method} /{parts[0]}"
        if parts[:2] == ["v1", "datasets"]:
            if len(parts) == 2:
                return "GET /v1/datasets"
            return "POST /v1/datasets/{name}/delays"
        if len(parts) == 3 and parts[0] == "v1" and parts[2] in _QUERY_SHAPES:
            return f"POST /v1/{{name}}/{parts[2]}"
        return f"{method} <unmatched>"

    async def _route(
        self, method: str, path: str, body: bytes, endpoint: str
    ) -> tuple:
        parts = [p for p in path.split("?")[0].split("/") if p]

        if parts == ["healthz"]:
            _require_method(method, "GET")
            return 200, {
                "v": PROTOCOL_VERSION,
                "status": self.health_status,
                "ready": self.health_status == "ok",
                "datasets": self.registry.names(),
                "generations": {
                    entry.name: entry.generation
                    for entry in self.registry.entries()
                },
            }

        if parts == ["metrics"]:
            _require_method(method, "GET")
            return 200, {
                "v": PROTOCOL_VERSION,
                **self.metrics.snapshot(self.registry),
            }

        if parts == ["v1", "datasets"]:
            _require_method(method, "GET")
            return 200, {
                "v": PROTOCOL_VERSION,
                "datasets": [
                    entry.describe() for entry in self.registry.entries()
                ],
            }

        if (
            len(parts) == 4
            and parts[:2] == ["v1", "datasets"]
            and parts[3] == "delays"
        ):
            _require_method(method, "POST")
            return await self._handle_delays(parts[2], body, endpoint)

        if len(parts) == 3 and parts[0] == "v1" and parts[2] in _QUERY_SHAPES:
            _require_method(method, "POST")
            return await self._handle_query(parts[1], parts[2], body, endpoint)

        raise ProtocolError(
            "unknown_route", f"no route for {method} {path}", status=404
        )

    # -- handlers -------------------------------------------------------

    def _admit(self, endpoint: str) -> tuple[int, dict, dict] | None:
        """Admission control: fast 503 instead of an unbounded queue.
        Returns the rejection response (with its ``Retry-After``
        backoff hint), or ``None`` when admitted.  Note unreadiness
        (``begin_drain``) does *not* reject — the grace window exists
        precisely so requests still in flight from a router that has
        not yet noticed keep succeeding."""
        if self._draining:
            self.metrics.observe_reject(endpoint)
            return 503, _error(
                "draining", "server is shutting down", retriable=True
            ), self._retry_after_header()
        if self._inflight >= self.max_inflight:
            self.metrics.observe_reject(endpoint)
            return 503, _error(
                "overloaded",
                f"{self._inflight} requests in flight "
                f"(max_inflight={self.max_inflight}); retry",
                retriable=True,
            ), self._retry_after_header()
        return None

    def _retry_after_header(self) -> dict:
        # RFC 9110 wants integral delta-seconds; emit sub-second
        # values as-is anyway (our own client parses floats, and a
        # strict parser falling back to "retry later" is still right).
        value = self.retry_after
        rendered = str(int(value)) if float(value).is_integer() else f"{value:g}"
        return {"Retry-After": rendered}

    async def _handle_query(
        self, name: str, shape: str, body: bytes, endpoint: str
    ) -> tuple:
        rejection = self._admit(endpoint)
        if rejection is not None:
            return rejection
        # Pin the service *before* any await: a hot swap mid-request
        # must not change what this request runs against.
        entry = self.registry.get(name)
        service = entry.service
        num_stations = service.timetable.num_stations
        self._inflight += 1
        self.metrics.inflight = self._inflight
        try:
            parsed = _parse_body(body)
            if shape == "profile":
                request, targets = parse_profile_request(parsed, num_stations)
                result = await self.executor.profile(service, request)
                return 200, encode_profile(
                    result, num_stations=num_stations, targets=targets
                )
            if shape == "journey":
                request = parse_journey_request(parsed, num_stations)
                result = await self.executor.journey(service, request)
                return 200, encode_journey(result)
            if shape == "multicriteria":
                request = parse_multicriteria_request(parsed, num_stations)
                result = await self.executor.multicriteria(service, request)
                return 200, encode_multicriteria(result)
            if shape == "via":
                request = parse_via_request(parsed, num_stations)
                result = await self.executor.via(service, request)
                return 200, encode_via(result)
            if shape == "min-transfers":
                request = parse_min_transfers_request(parsed, num_stations)
                result = await self.executor.min_transfers(service, request)
                return 200, encode_min_transfers(result)
            request = parse_batch_request(parsed, num_stations)
            response = await self.executor.batch(service, request)
            return 200, encode_batch(response, num_stations=num_stations)
        finally:
            self._inflight -= 1
            self.metrics.inflight = self._inflight

    async def _handle_delays(
        self, name: str, body: bytes, endpoint: str
    ) -> tuple:
        # Replans are CPU-heavy worker-pool jobs like any query: they
        # obey the same admission bound (a swap storm must not starve
        # queries) and a draining server starts no new ones.
        rejection = self._admit(endpoint)
        if rejection is not None:
            return rejection
        self._inflight += 1
        self.metrics.inflight = self._inflight
        try:
            entry = self.registry.get(name)
            command = parse_delay_request(
                _parse_body(body), entry.service.timetable.num_trains
            )
            if command.mode == "apply":
                return 200, await self._swap_apply(name, command)
            if command.mode == "prepare":
                return 200, await self._swap_prepare(name, command)
            if command.mode == "commit":
                return 200, await self._swap_commit(name, command)
            return 200, await self._swap_abort(name, command)
        finally:
            self._inflight -= 1
            self.metrics.inflight = self._inflight

    async def _swap_apply(self, name: str, command: DelayCommand) -> dict:
        entry = await self.registry.apply_delays(
            name,
            command.delays,
            slack_per_leg=command.slack_per_leg,
            replan=command.replan,
            advance=command.advance,
            run=self.executor.run,
        )
        self.metrics.observe_swap(name, entry.last_swap_seconds)
        return {
            "v": PROTOCOL_VERSION,
            "dataset": name,
            "mode": "apply",
            "generation": entry.generation,
            "num_delays": len(command.delays),
            "slack_per_leg": command.slack_per_leg,
            "swap_seconds": round(entry.last_swap_seconds, 6),
        }

    async def _swap_prepare(self, name: str, command: DelayCommand) -> dict:
        token, seconds = await self.registry.prepare_delays(
            name,
            command.delays,
            slack_per_leg=command.slack_per_leg,
            replan=command.replan,
            run=self.executor.run,
        )
        entry = self.registry.get(name)
        return {
            "v": PROTOCOL_VERSION,
            "dataset": name,
            "mode": "prepare",
            "token": token,
            "base_generation": entry.generation,
            "num_delays": len(command.delays),
            "slack_per_leg": command.slack_per_leg,
            "replan_seconds": round(seconds, 6),
        }

    async def _swap_commit(self, name: str, command: DelayCommand) -> dict:
        entry = await self.registry.commit_prepared(name, command.token)
        self.metrics.observe_swap(name, entry.last_swap_seconds)
        return {
            "v": PROTOCOL_VERSION,
            "dataset": name,
            "mode": "commit",
            "token": command.token,
            "generation": entry.generation,
            "swap_seconds": round(entry.last_swap_seconds, 6),
        }

    async def _swap_abort(self, name: str, command: DelayCommand) -> dict:
        discarded = await self.registry.abort_prepared(name, command.token)
        return {
            "v": PROTOCOL_VERSION,
            "dataset": name,
            "mode": "abort",
            "token": command.token,
            "discarded": discarded,
        }


def _parse_body(body: bytes) -> object:
    if not body:
        raise ProtocolError("invalid_request", "request body is empty")
    try:
        return json.loads(body)
    except json.JSONDecodeError as exc:
        raise ProtocolError(
            "invalid_json", f"request body is not valid JSON: {exc}"
        ) from None


def _require_method(method: str, expected: str) -> None:
    if method != expected:
        raise ProtocolError(
            "method_not_allowed",
            f"use {expected} for this endpoint, not {method}",
            status=405,
        )


def _error(code: str, message: str, *, retriable: bool = False) -> dict:
    payload = ProtocolError(code, message).payload()
    if retriable:
        payload["error"]["retriable"] = True
    return payload
