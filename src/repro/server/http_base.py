"""Shared asyncio HTTP/1.1 machinery for the serving front ends.

:class:`BaseAsyncHttpServer` owns everything that is identical between
a query worker (:class:`~repro.server.app.TransitServer`) and the
fleet routing gateway (:class:`~repro.fleet.gateway.FleetGateway`):
the keep-alive connection loop, strict request reading with an
oversized-body fast path, response writing, and the two-stage graceful
drain.  Subclasses implement exactly one hook —
:meth:`BaseAsyncHttpServer._dispatch` — and may return either a JSON
payload dict (serialized here) or pre-encoded ``bytes`` (written
verbatim; the gateway forwards worker answers byte-for-byte this way).

Drain is split into **readiness** and **liveness**:

* :meth:`begin_drain` only flips the readiness flag — ``/healthz``
  (which subclasses render from :attr:`health_status`) starts
  reporting ``"draining"`` while requests are still served normally,
  so a load balancer or the fleet gateway stops routing *before* any
  request gets rejected;
* :meth:`shutdown` calls :meth:`begin_drain`, waits out
  ``drain_grace`` seconds (readiness propagation time), then starts
  the hard drain: stop accepting, answer new requests ``503
  draining``, finish in-flight ones, force-close idle keep-alive
  connections, and run the subclass's :meth:`_post_drain` cleanup.
"""

from __future__ import annotations

import asyncio
import json

#: Request bodies above this are rejected with 413 before parsing.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Sentinel: the request declared a Content-Length over the cap and
#: its body was never read off the socket.
_BODY_TOO_LARGE = object()

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


class BaseAsyncHttpServer:
    """One listening socket; subclasses route via :meth:`_dispatch`."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_grace: float = 0.0,
    ) -> None:
        if drain_grace < 0:
            raise ValueError(
                f"drain_grace must be non-negative, got {drain_grace}"
            )
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self.drain_grace = drain_grace
        self._server: asyncio.base_events.Server | None = None
        self._inflight = 0
        #: Readiness: cleared by :meth:`begin_drain`; ``/healthz``
        #: reports ``"draining"`` while requests still succeed.
        self._ready = True
        #: Liveness drain: set by :meth:`shutdown` after the grace
        #: window; new requests are fast-503'd from here on.
        self._draining = False
        #: Connections currently parked between requests (waiting in
        #: readline); shutdown force-closes exactly these so idle
        #: keep-alive clients cannot stall the drain.
        self._idle_connections: set[asyncio.StreamWriter] = set()

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` holds the bound
        port afterwards (pass ``port=0`` for an ephemeral one)."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    @property
    def health_status(self) -> str:
        """What ``/healthz`` should report: ``"draining"`` from the
        moment :meth:`begin_drain` ran, ``"ok"`` before."""
        return "draining" if (self._draining or not self._ready) else "ok"

    def begin_drain(self) -> None:
        """Flip readiness only: ``/healthz`` answers ``"draining"``
        while queries are still admitted and served.  Idempotent."""
        self._ready = False

    async def shutdown(self, *, grace: float | None = None) -> None:
        """Graceful drain: announce unreadiness, wait ``grace``
        seconds (default: the constructor's ``drain_grace``) so load
        balancers stop routing, then stop accepting, finish in-flight
        requests, and force-close idle keep-alive connections.

        Idle connections are closed once the last in-flight request
        finished — their handlers are parked in a read that nothing
        else would ever wake, and (from Python 3.12.1) ``wait_closed``
        waits for every handler to return.  Handlers that are
        mid-request finish their response first (draining breaks their
        keep-alive loop)."""
        self.begin_drain()
        grace = self.drain_grace if grace is None else grace
        if grace > 0:
            await asyncio.sleep(grace)
        self._draining = True
        if self._server is not None:
            self._server.close()
        while self._inflight > 0:
            await asyncio.sleep(0.005)
        for writer in list(self._idle_connections):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()
        await self._post_drain()

    async def _post_drain(self) -> None:
        """Subclass cleanup after the last request drained (worker
        pools, health loops, downstream connections)."""

    # -- the routing hook ----------------------------------------------

    async def _dispatch(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, dict | bytes, dict]:
        """Route one request; returns ``(status, payload, extra
        response headers)``.  ``payload`` may be a JSON-safe dict or
        pre-encoded JSON ``bytes`` (forwarded verbatim)."""
        raise NotImplementedError

    # -- connection handling -------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                # Parked between requests: eligible for force-close by
                # a draining shutdown.
                self._idle_connections.add(writer)
                try:
                    request = await self._read_request(reader)
                finally:
                    self._idle_connections.discard(writer)
                if request is None:
                    break
                method, path, headers, body = request
                if body is _BODY_TOO_LARGE:
                    status, payload, extra = 413, _base_error(
                        "payload_too_large",
                        f"request body exceeds {MAX_BODY_BYTES} bytes",
                    ), {}
                    # The oversized body was never read off the socket,
                    # so the connection cannot be reused.
                    keep_alive = False
                else:
                    status, payload, extra = await self._dispatch(
                        method, path, headers, body
                    )
                    keep_alive = (
                        headers.get("connection", "").lower() != "close"
                        and not self._draining
                    )
                data = (
                    payload
                    if isinstance(payload, bytes)
                    else json.dumps(payload).encode("utf-8")
                )
                extra_lines = "".join(
                    f"{name}: {value}\r\n" for name, value in extra.items()
                )
                head = (
                    f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                    f"{extra_lines}"
                    f"\r\n"
                ).encode("latin-1")
                writer.write(head + data)
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            ValueError,  # malformed request line / headers
        ):
            pass  # client went away or spoke garbage; just close
        finally:
            self._idle_connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        """Parse one HTTP/1.1 request; ``None`` on a clean EOF.  An
        oversized body is left unread and signalled with the
        :data:`_BODY_TOO_LARGE` sentinel (answered 413 upstream)."""
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise asyncio.IncompleteReadError(line, None)
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            return method, path, headers, _BODY_TOO_LARGE
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body


def _base_error(code: str, message: str) -> dict:
    # Local renderer: http_base must not import the protocol module
    # (the gateway reuses this loop without the worker's schema).
    from repro.server.protocol import PROTOCOL_VERSION

    return {"v": PROTOCOL_VERSION, "error": {"code": code, "message": message}}


__all__ = ["BaseAsyncHttpServer", "MAX_BODY_BYTES"]
