"""Server-side observability: counters and latency histograms.

One :class:`ServerMetrics` belongs to one
:class:`~repro.server.app.TransitServer`.  All mutation happens on the
event-loop thread (the request handlers observe after the worker-pool
call returns), so no locking is needed; :meth:`ServerMetrics.snapshot`
renders a JSON-safe dict for the ``/metrics`` endpoint, folding in the
per-dataset :class:`~repro.service.cache.CacheStats` so cache hit
rates are visible next to the request counters they explain.

Latencies are recorded in fixed log-spaced buckets
(:data:`LATENCY_BUCKETS_MS`); p50/p99 are bucket-upper-bound estimates
— good enough to spot a regression, not a substitute for the
client-side percentiles the throughput benchmark measures.  A
percentile falling in the +inf overflow bucket renders as ``null``
next to a non-zero ``overflow_count`` (never clamped to the last
finite bound).
"""

from __future__ import annotations

import time

#: Upper bucket bounds in milliseconds (an implicit +inf bucket
#: follows the last bound).
LATENCY_BUCKETS_MS: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with bucket-bound percentiles."""

    __slots__ = ("_counts", "_sum_ms", "_count")

    def __init__(self) -> None:
        self._counts = [0] * (len(LATENCY_BUCKETS_MS) + 1)  # guarded-by: loop
        self._sum_ms = 0.0  # guarded-by: loop
        self._count = 0  # guarded-by: loop

    def observe(self, seconds: float) -> None:
        ms = seconds * 1000.0
        self._sum_ms += ms
        self._count += 1
        for i, bound in enumerate(LATENCY_BUCKETS_MS):
            if ms <= bound:
                self._counts[i] += 1
                return
        self._counts[-1] += 1

    def percentile(self, q: float) -> float | None:
        """Upper bound of the bucket holding the q-quantile.

        ``None`` with no observations — and ``None`` when the quantile
        falls in the +inf overflow bucket: a 10 s request must never
        be reported as "p99 ≤ 2500 ms".  The snapshot pairs the null
        bound with ``overflow_count`` so overload tails stay visible
        instead of silently clamped to the last finite bound.
        """
        if self._count == 0:
            return None
        rank = q * self._count
        seen = 0
        for i, count in enumerate(self._counts):
            seen += count
            if seen >= rank and count:
                if i < len(LATENCY_BUCKETS_MS):
                    return LATENCY_BUCKETS_MS[i]
                return None  # overflow bucket: no finite upper bound
        return None

    @property
    def overflow_count(self) -> int:
        """Observations beyond the last finite bucket bound."""
        return self._counts[-1]

    def snapshot(self) -> dict:
        return {
            "count": self._count,
            "sum_ms": round(self._sum_ms, 3),
            "mean_ms": round(self._sum_ms / self._count, 3)
            if self._count
            else None,
            "p50_ms_le": self.percentile(0.50),
            "p99_ms_le": self.percentile(0.99),
            "overflow_count": self.overflow_count,
            "buckets_ms": {
                str(bound): self._counts[i]
                for i, bound in enumerate(LATENCY_BUCKETS_MS)
            }
            | {"inf": self._counts[-1]},
        }


class ServerMetrics:
    """Request/response accounting of one server (event-loop-only)."""

    def __init__(self) -> None:
        self._started = time.monotonic()
        self.requests_total: dict[str, int] = {}  # guarded-by: loop
        self.responses_total: dict[str, dict[str, int]] = {}  # guarded-by: loop
        self.latency: dict[str, LatencyHistogram] = {}  # guarded-by: loop
        self.rejected_total = 0  # guarded-by: loop
        self.rejected_by_endpoint: dict[str, int] = {}  # guarded-by: loop
        self.retries_observed_total = 0  # guarded-by: loop
        self.inflight = 0  # guarded-by: loop
        self.micro_batches_total = 0  # guarded-by: loop
        self.micro_batched_queries_total = 0  # guarded-by: loop
        self.micro_batch_max_size = 0  # guarded-by: loop
        self.swaps_total: dict[str, int] = {}  # guarded-by: loop
        self.last_swap_seconds: dict[str, float] = {}  # guarded-by: loop

    # -- observation hooks ---------------------------------------------

    def observe_request(self, endpoint: str) -> None:
        self.requests_total[endpoint] = (
            self.requests_total.get(endpoint, 0) + 1
        )

    def observe_response(
        self, endpoint: str, status: int, seconds: float
    ) -> None:
        per_status = self.responses_total.setdefault(endpoint, {})
        key = str(status)
        per_status[key] = per_status.get(key, 0) + 1
        hist = self.latency.get(endpoint)
        if hist is None:
            hist = self.latency[endpoint] = LatencyHistogram()
        hist.observe(seconds)

    def observe_reject(self, endpoint: str) -> None:
        """A 503 (overloaded or draining) on ``endpoint``.  The scalar
        ``rejected_total`` stays for wire compat; the per-endpoint
        breakdown makes 503 pressure attributable per route."""
        self.rejected_total += 1
        self.rejected_by_endpoint[endpoint] = (
            self.rejected_by_endpoint.get(endpoint, 0) + 1
        )

    def observe_client_retry(self) -> None:
        """A request declared itself a retry (``X-Retry-Attempt`` > 0)
        — cooperative clients such as
        :class:`repro.client.HttpBackend` mark their 503 backoff
        retries this way, making retry pressure visible server-side."""
        self.retries_observed_total += 1

    def observe_micro_batch(self, size: int) -> None:
        self.micro_batches_total += 1
        self.micro_batched_queries_total += size
        self.micro_batch_max_size = max(self.micro_batch_max_size, size)

    def observe_swap(self, dataset: str, seconds: float) -> None:
        self.swaps_total[dataset] = self.swaps_total.get(dataset, 0) + 1
        self.last_swap_seconds[dataset] = seconds

    # -- rendering ------------------------------------------------------

    def snapshot(self, registry=None) -> dict:
        """JSON-safe metrics document (the ``/metrics`` payload).

        ``registry``, when given, contributes per-dataset generation
        counters and result-cache hit rates
        (:attr:`TransitService.cache_stats`)."""
        batches = self.micro_batches_total
        payload: dict = {
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "requests_total": dict(self.requests_total),
            "responses_total": {
                endpoint: dict(statuses)
                for endpoint, statuses in self.responses_total.items()
            },
            "rejected_total": self.rejected_total,
            "rejected_by_endpoint": dict(self.rejected_by_endpoint),
            "retries_observed_total": self.retries_observed_total,
            "inflight": self.inflight,
            "latency": {
                endpoint: hist.snapshot()
                for endpoint, hist in self.latency.items()
            },
            "micro_batching": {
                "batches_total": batches,
                "batched_queries_total": self.micro_batched_queries_total,
                "max_batch_size": self.micro_batch_max_size,
                "mean_batch_size": round(
                    self.micro_batched_queries_total / batches, 3
                )
                if batches
                else None,
            },
            "swaps_total": dict(self.swaps_total),
            "last_swap_seconds": {
                name: round(seconds, 6)
                for name, seconds in self.last_swap_seconds.items()
            },
        }
        if registry is not None:
            datasets: dict[str, dict] = {}
            for entry in registry.entries():
                cache = entry.service.cache_stats
                datasets[entry.name] = {
                    "generation": entry.generation,
                    "result_cache": {
                        "hits": cache.hits,
                        "misses": cache.misses,
                        "size": cache.size,
                        "maxsize": cache.maxsize,
                        "hit_rate": round(cache.hit_rate, 4),
                    },
                }
            payload["datasets"] = datasets
        return payload
