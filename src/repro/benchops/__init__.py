"""Benchmark ops: persistent perf trajectories with regression gates.

Every ``benchmarks/bench_*.py`` run used to print its tables and
vanish; the only perf guards were coarse in-CI ratio asserts.  This
package is the results layer that makes the repo's speed claims
*enforceable*:

* :class:`~repro.benchops.schema.BenchRecord` — one schema'd result
  record per benchmark run: machine fingerprint, git SHA, scale,
  config hash, and a flat ``metrics`` dict (QPS, latency percentiles,
  speed-ups, wall times).  :func:`~repro.benchops.schema.emit_record`
  drops it as a pending JSON file.
* the **indexer** (:func:`~repro.benchops.trajectory.index_records`,
  CLI ``repro-transit bench index``) — validates pending records and
  appends them to per-benchmark ``BENCH_<name>.json`` trajectory files
  at the repo root, refusing to touch a corrupt trajectory.
* the **comparator** (:func:`~repro.benchops.compare.compare_records`,
  CLI ``repro-transit bench compare``) — loads the last known-good
  entry (same scale + config hash) and fails on regressions beyond a
  configurable noise band (default ±15 %, per-metric overrides).

Metric *direction* is inferred from the metric name
(:func:`~repro.benchops.compare.metric_direction`): ``*_ms`` /
``*_seconds`` are lower-is-better, ``*_qps`` / ``*_speedup`` are
higher-is-better, anything else is recorded but never gated.

Everything here is stdlib-only: the package must be importable from
CI shells and bench sessions without pulling in the query stack.
"""

from __future__ import annotations

from repro.benchops.compare import (
    ComparisonReport,
    MetricDelta,
    compare_latest,
    compare_records,
    metric_direction,
)
from repro.benchops.machine import current_git_sha, machine_fingerprint
from repro.benchops.schema import (
    RECORD_SHAPES,
    SCHEMA_VERSION,
    BenchOpsError,
    BenchRecord,
    RecordError,
    emit_record,
    validate_record,
)
from repro.benchops.trajectory import (
    TrajectoryError,
    append_record,
    index_records,
    load_trajectory,
    trajectory_names,
    trajectory_path,
)

__all__ = [
    "RECORD_SHAPES",
    "SCHEMA_VERSION",
    "BenchOpsError",
    "BenchRecord",
    "ComparisonReport",
    "MetricDelta",
    "RecordError",
    "TrajectoryError",
    "append_record",
    "compare_latest",
    "compare_records",
    "current_git_sha",
    "emit_record",
    "index_records",
    "load_trajectory",
    "machine_fingerprint",
    "metric_direction",
    "trajectory_names",
    "trajectory_path",
    "validate_record",
]
