"""The benchmark record schema (one record = one benchmark run).

A :class:`BenchRecord` is deliberately flat and JSON-safe: a
trajectory file is a list of these, and every consumer — the indexer,
the comparator, CI, a notebook — reads them with nothing but ``json``.
Validation lives here (:func:`validate_record`) so corrupt or
hand-edited records are rejected at the indexing boundary with a
message naming the offending field, never half-ingested.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.benchops.machine import current_git_sha, machine_fingerprint

#: Bumped when the record shape changes incompatibly; the indexer
#: refuses records from a different schema generation.
SCHEMA_VERSION = 1

#: Valid benchmark scales (mirrors ``benchmarks/conftest.bench_scale``).
SCALES = ("tiny", "small", "medium")

#: Machine-fingerprint keys every record carries.
MACHINE_KEYS = ("platform", "python", "machine", "cpu_count")

#: Required metric keys per benchmark.  A benchmark registered here
#: must carry *at least* these metrics in every record — the indexer
#: rejects a record whose shape drifted (a renamed metric would
#: otherwise silently break the regression gate, which only compares
#: metrics present on both sides).  Unregistered benchmarks are
#: shape-free.
RECORD_SHAPES: dict[str, tuple[str, ...]] = {
    "delay_stream": (
        "replan_full_ms",
        "replan_incremental_ms",
        "replan_speedup",
        "swaps_per_minute",
        "replay_qps",
        "failed_requests",
    ),
    "query_zoo": (
        "multicriteria_qps",
        "via_qps",
        "min_transfers_qps",
        "mixed_qps",
        "multicriteria_p99_ms",
        "via_p99_ms",
        "min_transfers_p99_ms",
    ),
}


class BenchOpsError(Exception):
    """Base failure of the benchmark-ops layer."""


class RecordError(BenchOpsError):
    """A record violates the schema (bad field, missing key, NaN metric)."""


def config_hash(config: dict) -> str:
    """Stable hash of a benchmark's configuration knobs.

    Canonical-JSON SHA-256, truncated to 16 hex chars — enough to key
    "same benchmark setup" without dragging the whole config into every
    comparison.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark run's schema'd result.

    ``metrics`` maps metric name to a finite float; names encode the
    gating direction (see :func:`repro.benchops.compare.metric_direction`).
    ``config`` holds the knobs that shaped the run (instance list,
    query counts, worker counts, …); ``config_hash`` keys comparability.
    """

    benchmark: str
    scale: str
    metrics: dict[str, float]
    config: dict = field(default_factory=dict)
    config_hash: str = ""
    git_sha: str | None = None
    machine: dict = field(default_factory=dict)
    created_unix: float = 0.0
    schema_version: int = SCHEMA_VERSION

    @classmethod
    def capture(
        cls,
        benchmark: str,
        *,
        scale: str,
        metrics: dict[str, float],
        config: dict | None = None,
    ) -> "BenchRecord":
        """Build a record for *this* run: stamps the current machine
        fingerprint, git SHA and wall-clock time, and hashes ``config``."""
        config = dict(config or {})
        record = cls(
            benchmark=benchmark,
            scale=scale,
            metrics={name: float(value) for name, value in metrics.items()},
            config=config,
            config_hash=config_hash(config),
            git_sha=current_git_sha(),
            machine=machine_fingerprint(),
            created_unix=time.time(),
        )
        validate_record(record.to_dict())
        return record

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "benchmark": self.benchmark,
            "scale": self.scale,
            "created_unix": self.created_unix,
            "git_sha": self.git_sha,
            "config": self.config,
            "config_hash": self.config_hash,
            "machine": self.machine,
            "metrics": self.metrics,
        }


def _fail(message: str) -> RecordError:
    return RecordError(f"invalid bench record: {message}")


def validate_record(raw: object) -> BenchRecord:
    """Validate a decoded JSON object into a :class:`BenchRecord`.

    Raises :class:`RecordError` naming the first offending field; the
    indexer calls this on every pending record before a trajectory is
    touched, so a bad record can never corrupt a ``BENCH_*.json``.
    """
    if not isinstance(raw, dict):
        raise _fail(f"expected an object, got {type(raw).__name__}")
    version = raw.get("schema_version")
    if version != SCHEMA_VERSION:
        raise _fail(
            f"schema_version must be {SCHEMA_VERSION}, got {version!r}"
        )
    benchmark = raw.get("benchmark")
    if not isinstance(benchmark, str) or not benchmark:
        raise _fail(f"benchmark must be a non-empty string, got {benchmark!r}")
    if not all(c.isalnum() or c == "_" for c in benchmark):
        raise _fail(
            f"benchmark must be [A-Za-z0-9_]+ (it names a BENCH_<name>.json "
            f"file), got {benchmark!r}"
        )
    scale = raw.get("scale")
    if scale not in SCALES:
        raise _fail(f"scale must be one of {SCALES}, got {scale!r}")
    created = raw.get("created_unix")
    if not isinstance(created, (int, float)) or created < 0:
        raise _fail(f"created_unix must be a non-negative number, got {created!r}")
    git_sha = raw.get("git_sha")
    if git_sha is not None and (
        not isinstance(git_sha, str) or not git_sha
    ):
        raise _fail(f"git_sha must be null or a non-empty string, got {git_sha!r}")
    config = raw.get("config")
    if not isinstance(config, dict):
        raise _fail(f"config must be an object, got {type(config).__name__}")
    declared_hash = raw.get("config_hash")
    if not isinstance(declared_hash, str):
        raise _fail(f"config_hash must be a string, got {declared_hash!r}")
    if declared_hash != config_hash(config):
        raise _fail(
            f"config_hash {declared_hash!r} does not match config "
            f"(expected {config_hash(config)!r})"
        )
    machine = raw.get("machine")
    if not isinstance(machine, dict):
        raise _fail(f"machine must be an object, got {type(machine).__name__}")
    for key in MACHINE_KEYS:
        if key not in machine:
            raise _fail(f"machine is missing {key!r}")
    metrics = raw.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise _fail("metrics must be a non-empty object")
    for name, value in metrics.items():
        if not isinstance(name, str) or not name:
            raise _fail(f"metric names must be non-empty strings, got {name!r}")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise _fail(f"metric {name!r} must be a number, got {value!r}")
        if not math.isfinite(value):
            raise _fail(f"metric {name!r} must be finite, got {value!r}")
    missing = [
        name
        for name in RECORD_SHAPES.get(benchmark, ())
        if name not in metrics
    ]
    if missing:
        raise _fail(
            f"benchmark {benchmark!r} is missing required metric(s) "
            f"{missing} (see RECORD_SHAPES)"
        )
    return BenchRecord(
        benchmark=benchmark,
        scale=scale,
        metrics={name: float(value) for name, value in metrics.items()},
        config=config,
        config_hash=declared_hash,
        git_sha=git_sha,
        machine=machine,
        created_unix=float(created),
        schema_version=version,
    )


def emit_record(record: BenchRecord, out_dir: str | os.PathLike) -> Path:
    """Write ``record`` as a pending JSON file under ``out_dir``.

    Pending records are one-file-per-run (``<benchmark>-<pid>-<n>.json``,
    collision-free within and across processes) and wait for
    ``repro-transit bench index`` to validate and fold them into the
    repo-root trajectories.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    n = 0
    while True:
        path = out / f"{record.benchmark}-{os.getpid()}-{n}.json"
        if not path.exists():
            break
        n += 1
    path.write_text(json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n")
    return path
