"""The regression gate: compare a run against its last known-good.

Direction is encoded in the metric *name* so the comparator needs no
side table: ``*_ms`` / ``*_seconds`` are lower-is-better, ``*_qps`` /
``*_speedup`` / ``*_per_second`` / ``*_hit_rate`` are
higher-is-better, everything else (counts, ratios, sizes) is recorded
for the trajectory but never gated.

A candidate **regresses** a metric when it moves in the bad direction
by *strictly more* than the noise band (default ±15 %; per-metric
overrides widen, narrow or — with ``None`` — disable the gate).
Exactly-at-the-band passes: the band is the noise we accept, not a
target.  The baseline is the most recent prior entry with the same
``scale`` and ``config_hash`` — cross-scale or cross-config entries
are not comparable and never gate each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.benchops.schema import BenchOpsError, BenchRecord

#: Default symmetric noise band (relative).
DEFAULT_BAND = 0.15

_LOWER_SUFFIXES = ("_ms", "_seconds")
_HIGHER_SUFFIXES = (
    "_qps", "_speedup", "_per_second", "_per_minute", "_hit_rate"
)


def metric_direction(name: str) -> int:
    """``-1`` lower-is-better, ``+1`` higher-is-better, ``0`` ungated."""
    if name.endswith(_LOWER_SUFFIXES):
        return -1
    if name.endswith(_HIGHER_SUFFIXES):
        return +1
    return 0


@dataclass(frozen=True)
class MetricDelta:
    """One gated metric's movement between baseline and candidate."""

    metric: str
    baseline: float
    candidate: float
    #: Relative change, ``(candidate - baseline) / baseline``.
    change: float
    #: The band this metric was gated with.
    band: float
    direction: int
    regressed: bool

    def describe(self) -> str:
        arrow = "↑" if self.change >= 0 else "↓"
        verdict = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.metric}: {self.baseline:g} → {self.candidate:g} "
            f"({arrow}{abs(self.change) * 100:.1f}%, band ±{self.band * 100:g}%) "
            f"{verdict}"
        )


@dataclass(frozen=True)
class ComparisonReport:
    """Everything one baseline-vs-candidate comparison decided."""

    benchmark: str
    deltas: list[MetricDelta] = field(default_factory=list)
    #: Metric names present but never gated (no direction, zero
    #: baseline, or an explicit ``None`` override).
    skipped: list[str] = field(default_factory=list)
    #: Gated metrics the baseline had but the candidate lost — a
    #: vanished speed claim fails the gate like a regressed one.
    missing: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def describe(self) -> str:
        lines = [d.describe() for d in self.deltas]
        lines += [f"{name}: MISSING from candidate" for name in self.missing]
        if self.skipped:
            lines.append(f"(ungated: {', '.join(sorted(self.skipped))})")
        return "\n".join(lines)


def compare_records(
    baseline: BenchRecord,
    candidate: BenchRecord,
    *,
    band: float = DEFAULT_BAND,
    overrides: Mapping[str, float | None] | None = None,
) -> ComparisonReport:
    """Gate ``candidate`` against ``baseline`` metric by metric."""
    if band < 0:
        raise BenchOpsError(f"noise band must be non-negative, got {band}")
    if baseline.benchmark != candidate.benchmark:
        raise BenchOpsError(
            f"cannot compare across benchmarks: "
            f"{baseline.benchmark!r} vs {candidate.benchmark!r}"
        )
    overrides = dict(overrides or {})
    deltas: list[MetricDelta] = []
    skipped: list[str] = []
    missing: list[str] = []
    for name, base_value in baseline.metrics.items():
        direction = metric_direction(name)
        metric_band = overrides.get(name, band)
        if direction == 0 or metric_band is None:
            skipped.append(name)
            continue
        if name not in candidate.metrics:
            missing.append(name)
            continue
        if base_value == 0:
            # No relative change is computable from a zero baseline.
            skipped.append(name)
            continue
        value = candidate.metrics[name]
        change = (value - base_value) / abs(base_value)
        regressed = (direction < 0 and change > metric_band) or (
            direction > 0 and change < -metric_band
        )
        deltas.append(
            MetricDelta(
                metric=name,
                baseline=base_value,
                candidate=value,
                change=change,
                band=metric_band,
                direction=direction,
                regressed=regressed,
            )
        )
    return ComparisonReport(
        benchmark=baseline.benchmark,
        deltas=deltas,
        skipped=skipped,
        missing=missing,
    )


def find_baseline(
    history: Sequence[BenchRecord], candidate: BenchRecord
) -> BenchRecord | None:
    """The last known-good entry for ``candidate``: the most recent
    prior record with the same scale and config hash (an entry from a
    different scale or config measures something else)."""
    for record in reversed(history):
        if (
            record.scale == candidate.scale
            and record.config_hash == candidate.config_hash
        ):
            return record
    return None


def compare_latest(
    history: Sequence[BenchRecord],
    *,
    candidate: BenchRecord | None = None,
    band: float = DEFAULT_BAND,
    overrides: Mapping[str, float | None] | None = None,
) -> ComparisonReport | None:
    """Gate the newest entry of ``history`` (or an explicit not-yet-
    indexed ``candidate``) against its last known-good baseline.

    Returns ``None`` when no comparable baseline exists — a first run
    at a new scale or config cannot regress against anything.
    """
    history = list(history)
    if candidate is None:
        if not history:
            return None
        candidate = history[-1]
        history = history[:-1]
    baseline = find_baseline(history, candidate)
    if baseline is None:
        return None
    return compare_records(
        baseline, candidate, band=band, overrides=overrides
    )
