"""Machine fingerprint + git provenance for bench records.

A trajectory spans months of commits and possibly several machines; a
record without "where did this number come from" is noise.  The
fingerprint is deliberately small — enough to explain a perf cliff
("oh, that entry ran on 2 cores"), not a full hardware inventory.
"""

from __future__ import annotations

import os
import platform
import subprocess


def machine_fingerprint() -> dict:
    """The executing machine, as a JSON-safe dict."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def current_git_sha(cwd: str | None = None) -> str | None:
    """The checked-out commit, or ``None`` outside a git work tree
    (records stay emittable from exported tarballs and sdists)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    sha = out.stdout.strip()
    return sha or None
