"""Trajectory files: the persistent, per-benchmark perf history.

One benchmark ⇒ one ``BENCH_<name>.json`` at the repo root::

    {
      "schema_version": 1,
      "benchmark": "store_warmstart",
      "entries": [ <BenchRecord>, ... ]   # append-ordered, oldest first
    }

Trajectories are committed alongside the code whose speed they record,
so ``git log BENCH_*.json`` *is* the perf history.  The indexer is the
only writer: it validates every pending record (schema *and* matching
benchmark name) before touching a trajectory, loads-and-revalidates
the existing file, and writes atomically (temp file + rename) — a
corrupt trajectory is reported, never silently replaced or extended.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.benchops.schema import (
    SCHEMA_VERSION,
    BenchOpsError,
    BenchRecord,
    RecordError,
    validate_record,
)

_PREFIX = "BENCH_"


class TrajectoryError(BenchOpsError):
    """A trajectory file is corrupt or inconsistent with its name."""


def trajectory_path(root: str | os.PathLike, benchmark: str) -> Path:
    return Path(root) / f"{_PREFIX}{benchmark}.json"


def trajectory_names(root: str | os.PathLike) -> list[str]:
    """Benchmark names with a trajectory under ``root`` (sorted)."""
    return sorted(
        p.name[len(_PREFIX) : -len(".json")]
        for p in Path(root).glob(f"{_PREFIX}*.json")
    )


def load_trajectory(path: str | os.PathLike) -> list[BenchRecord]:
    """Load and fully validate one trajectory file.

    Every entry is re-validated on load: a hand-edited or truncated
    trajectory fails here with the offending entry's index, and the
    indexer refuses to append to it.
    """
    path = Path(path)
    try:
        raw = json.loads(path.read_text())
    except OSError as exc:
        raise TrajectoryError(f"cannot read trajectory {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise TrajectoryError(
            f"trajectory {path} is not valid JSON ({exc}) — "
            f"restore it from git before indexing"
        ) from None
    if not isinstance(raw, dict):
        raise TrajectoryError(
            f"trajectory {path} must be an object, got {type(raw).__name__}"
        )
    if raw.get("schema_version") != SCHEMA_VERSION:
        raise TrajectoryError(
            f"trajectory {path} has schema_version "
            f"{raw.get('schema_version')!r}, expected {SCHEMA_VERSION}"
        )
    name = _name_from_path(path)
    if raw.get("benchmark") != name:
        raise TrajectoryError(
            f"trajectory {path} declares benchmark {raw.get('benchmark')!r} "
            f"but its filename says {name!r}"
        )
    entries = raw.get("entries")
    if not isinstance(entries, list):
        raise TrajectoryError(f"trajectory {path}: entries must be a list")
    records = []
    for i, entry in enumerate(entries):
        try:
            record = validate_record(entry)
        except RecordError as exc:
            raise TrajectoryError(f"trajectory {path}, entry {i}: {exc}") from None
        if record.benchmark != name:
            raise TrajectoryError(
                f"trajectory {path}, entry {i}: benchmark "
                f"{record.benchmark!r} does not belong here"
            )
        records.append(record)
    return records


def append_record(root: str | os.PathLike, record: BenchRecord) -> Path:
    """Append one (validated) record to its trajectory under ``root``.

    Creates the trajectory on first append; atomic write so a crash
    mid-index never leaves a half-written file.
    """
    validate_record(record.to_dict())
    path = trajectory_path(root, record.benchmark)
    records = load_trajectory(path) if path.exists() else []
    records.append(record)
    document = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": record.benchmark,
        "entries": [r.to_dict() for r in records],
    }
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


@dataclass(frozen=True)
class IndexSummary:
    """What one ``bench index`` run did."""

    indexed: list[tuple[str, Path]]  # (benchmark, trajectory path)
    rejected: list[tuple[Path, str]]  # (pending file, reason)


def index_records(
    records_dir: str | os.PathLike,
    root: str | os.PathLike,
    *,
    consume: bool = True,
) -> IndexSummary:
    """Fold every pending record under ``records_dir`` into the
    trajectories under ``root``.

    Records are ingested oldest-first (by mtime, then name) so
    same-session records land in run order.  Invalid records are
    reported and left in place; valid ones are appended and — with
    ``consume`` — deleted, so re-running the indexer is idempotent.
    """
    pending = sorted(
        Path(records_dir).glob("*.json"),
        key=lambda p: (p.stat().st_mtime, p.name),
    )
    indexed: list[tuple[str, Path]] = []
    rejected: list[tuple[Path, str]] = []
    for path in pending:
        try:
            raw = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            rejected.append((path, f"unreadable: {exc}"))
            continue
        try:
            record = validate_record(raw)
            trajectory = append_record(root, record)
        except BenchOpsError as exc:
            rejected.append((path, str(exc)))
            continue
        indexed.append((record.benchmark, trajectory))
        if consume:
            path.unlink()
    return IndexSummary(indexed=indexed, rejected=rejected)


def _name_from_path(path: Path) -> str:
    name = path.name
    if not (name.startswith(_PREFIX) and name.endswith(".json")):
        raise TrajectoryError(
            f"{path} is not a trajectory file (expected {_PREFIX}<name>.json)"
        )
    return name[len(_PREFIX) : -len(".json")]
