"""Typed requests → wire objects (the client side of the protocol).

The inverse direction of :mod:`repro.server.protocol`'s parsers: each
function here renders one service-layer request as the JSON-safe wire
object the ``/v1`` endpoints accept.  Both backends use these —
:class:`~repro.client.http.HttpBackend` serializes the result over
TCP, :class:`~repro.client.backend.LocalBackend` feeds it straight to
the server's own parse functions in-process — so the two transports
see byte-for-byte the same request representation, which is half of
the bitwise-parity guarantee (the other half is decoding answers
through one decoder set, :mod:`repro.client.results`).

Optional fields are *omitted* rather than sent as ``null``: the wire
schema's strict validation rejects ``None`` where an integer is
expected, and omission is the protocol's way of saying "default".

Also here: normalization of the convenience call forms every backend
accepts (raw station ints, raw (source, target) pairs) into the typed
requests, shared so the sugar behaves identically across transports.
"""

from __future__ import annotations

from typing import Sequence

from repro.service.model import (
    BatchRequest,
    JourneyRequest,
    MinTransfersRequest,
    MulticriteriaRequest,
    ProfileRequest,
    ViaRequest,
)
from repro.timetable.delays import Delay


# ---------------------------------------------------------------------------
# Normalization of convenience forms
# ---------------------------------------------------------------------------


def as_profile_request(request: ProfileRequest | int) -> ProfileRequest:
    if isinstance(request, ProfileRequest):
        return request
    return ProfileRequest(request)


def as_journey_request(
    request: JourneyRequest | int,
    target: int | None = None,
    departure: int | None = None,
) -> JourneyRequest:
    if isinstance(request, JourneyRequest):
        return request
    if target is None:
        raise TypeError("journey(source, target) needs a target")
    return JourneyRequest(request, target, departure)


def as_batch_request(
    request: BatchRequest | Sequence[tuple[int, int]],
) -> BatchRequest:
    if isinstance(request, BatchRequest):
        return request
    return BatchRequest.from_pairs(request)


def as_multicriteria_request(
    request: MulticriteriaRequest | int,
    target: int | None = None,
    departure: int | None = None,
    max_transfers: int = 5,
) -> MulticriteriaRequest:
    if isinstance(request, MulticriteriaRequest):
        return request
    if target is None or departure is None:
        raise TypeError(
            "multicriteria(source, target, departure=...) needs a target "
            "and a departure"
        )
    return MulticriteriaRequest(request, target, departure, max_transfers)


def as_via_request(
    request: ViaRequest | int,
    via: int | None = None,
    target: int | None = None,
    departure: int | None = None,
) -> ViaRequest:
    if isinstance(request, ViaRequest):
        return request
    if via is None or target is None or departure is None:
        raise TypeError(
            "via(source, via, target, departure=...) needs a via, a "
            "target and a departure"
        )
    return ViaRequest(request, via, target, departure)


def as_min_transfers_request(
    request: MinTransfersRequest | int,
    target: int | None = None,
    departure: int | None = None,
    max_transfers: int = 5,
) -> MinTransfersRequest:
    if isinstance(request, MinTransfersRequest):
        return request
    if target is None or departure is None:
        raise TypeError(
            "min_transfers(source, target, departure=...) needs a target "
            "and a departure"
        )
    return MinTransfersRequest(request, target, departure, max_transfers)


# ---------------------------------------------------------------------------
# Wire rendering
# ---------------------------------------------------------------------------


def profile_body(
    request: ProfileRequest, targets: Sequence[int] | None = None
) -> dict:
    body: dict = {"source": request.source}
    if request.num_threads is not None:
        body["num_threads"] = request.num_threads
    if targets is not None:
        body["targets"] = [int(t) for t in targets]
    return body


def journey_body(request: JourneyRequest) -> dict:
    body: dict = {"source": request.source, "target": request.target}
    if request.departure is not None:
        body["departure"] = request.departure
    return body


def batch_body(request: BatchRequest) -> dict:
    body: dict = {}
    if request.journeys:
        body["journeys"] = [journey_body(j) for j in request.journeys]
    if request.profiles:
        body["profiles"] = [profile_body(p) for p in request.profiles]
    return body


def multicriteria_body(request: MulticriteriaRequest) -> dict:
    return {
        "source": request.source,
        "target": request.target,
        "departure": request.departure,
        "max_transfers": request.max_transfers,
    }


def via_body(request: ViaRequest) -> dict:
    return {
        "source": request.source,
        "via": request.via,
        "target": request.target,
        "departure": request.departure,
    }


def min_transfers_body(request: MinTransfersRequest) -> dict:
    return {
        "source": request.source,
        "target": request.target,
        "departure": request.departure,
        "max_transfers": request.max_transfers,
    }


def delays_body(
    delays: Sequence[Delay],
    slack_per_leg: int = 0,
    replan: str = "full",
) -> dict:
    items = []
    for delay in delays:
        item: dict = {"train": delay.train, "minutes": delay.minutes}
        if delay.from_stop:
            item["from_stop"] = delay.from_stop
        items.append(item)
    body: dict = {"delays": items}
    if slack_per_leg:
        body["slack_per_leg"] = slack_per_leg
    if replan != "full":
        body["replan"] = replan
    return body
