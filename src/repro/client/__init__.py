"""The client SDK: one query API, two transports.

``TransitBackend`` is the transport-agnostic surface over the serving
layer's six query shapes (``profile``, ``journey``, ``batch``,
``multicriteria``, ``via``, ``min_transfers``) plus ``journey_many``,
the streaming ``iter_batch``, ``apply_delays`` and ``info``.  Programs
written against it run unchanged — with bitwise-identical answers —
over:

* :class:`LocalBackend` — an in-process
  :class:`~repro.service.TransitService` or a lazily-opened artifact
  store (``repro.store``);
* :class:`HttpBackend` — a remote :mod:`repro.server` fleet, over a
  stdlib-only keep-alive connection pool with per-request timeouts and
  bounded 503 retry (:class:`RetryPolicy`).

Pick one with :func:`connect`::

    from repro.client import connect

    backend = connect("stores/berlin")                  # in-process
    backend = connect("http://10.0.0.7:8321/berlin")    # remote fleet

    answer = backend.journey(3, 41, departure=8 * 60)
    for item in backend.iter_batch(pairs):              # streaming
        ...

Failures share one typed hierarchy (:mod:`repro.client.errors`)
whichever transport raised them.  See ``docs/CLIENT.md`` for the full
tour and ``docs/SERVER.md`` for the wire protocol underneath.
"""

from repro.client.backend import LocalBackend, TransitBackend, connect
from repro.client.errors import (
    BackendError,
    BackendTimeoutError,
    BadRequestError,
    OverloadedError,
    ServerInternalError,
    TransportError,
    UnknownDatasetError,
)
from repro.client.http import HttpBackend, HttpBackendStats, RetryPolicy
from repro.client.results import (
    BatchAnswer,
    ConnectionProfile,
    DatasetInfo,
    DelayUpdate,
    JourneyAnswer,
    MinTransfersAnswer,
    MulticriteriaAnswer,
    ProfileAnswer,
    ViaAnswer,
)

__all__ = [
    "TransitBackend",
    "LocalBackend",
    "HttpBackend",
    "HttpBackendStats",
    "RetryPolicy",
    "connect",
    "BackendError",
    "TransportError",
    "BackendTimeoutError",
    "BadRequestError",
    "UnknownDatasetError",
    "OverloadedError",
    "ServerInternalError",
    "ConnectionProfile",
    "JourneyAnswer",
    "ProfileAnswer",
    "BatchAnswer",
    "MulticriteriaAnswer",
    "ViaAnswer",
    "MinTransfersAnswer",
    "DatasetInfo",
    "DelayUpdate",
]
