"""`TransitBackend` — one query API over any transport — and its
in-process implementation, :class:`LocalBackend`.

A backend answers the entrypoints of the serving surface — the six
query shapes (``profile``, ``journey``, ``batch``, ``multicriteria``,
``via``, ``min_transfers``) plus ``journey_many``, the streaming
``iter_batch``, ``apply_delays`` and ``info`` — over the service
layer's typed requests (:class:`~repro.service.model.ProfileRequest`,
:class:`~repro.service.model.JourneyRequest`,
:class:`~repro.service.model.BatchRequest`,
:class:`~repro.service.model.MulticriteriaRequest`,
:class:`~repro.service.model.ViaRequest`,
:class:`~repro.service.model.MinTransfersRequest`).  Programs written against
the protocol run unchanged on an in-process dataset
(:class:`LocalBackend`) or a remote server
(:class:`~repro.client.http.HttpBackend`) — with **bitwise-identical
answers** (``tests/client/test_transport_parity.py``).

The parity is structural, not coincidental: :class:`LocalBackend`
pushes every request through the *server's own wire layer* in-process
— :mod:`repro.client.wire` renders the typed request as the wire
object, :mod:`repro.server.protocol`'s parsers validate it (same typed
errors, same codes), the facade answers, ``encode_*`` renders the
answer, and :mod:`repro.client.results` decodes it — exactly the
pipeline a remote request traverses, minus the socket.  What the
transports can differ in is latency and transport-level failures,
never content.
"""

from __future__ import annotations

import time
from pathlib import Path
from threading import Lock
from typing import Iterator, Protocol, Sequence, runtime_checkable

from repro.client import wire
from repro.client.errors import error_from_payload
from repro.client.results import (
    BatchAnswer,
    DatasetInfo,
    DelayUpdate,
    JourneyAnswer,
    MinTransfersAnswer,
    MulticriteriaAnswer,
    ProfileAnswer,
    ViaAnswer,
    decode_batch,
    decode_info,
    decode_journey,
    decode_min_transfers,
    decode_multicriteria,
    decode_profile,
    decode_via,
)
from repro.server.protocol import (
    ProtocolError,
    encode_batch,
    encode_journey,
    encode_min_transfers,
    encode_multicriteria,
    encode_profile,
    encode_via,
    parse_batch_request,
    parse_delay_request,
    parse_journey_request,
    parse_min_transfers_request,
    parse_multicriteria_request,
    parse_profile_request,
    parse_via_request,
)
from repro.service.facade import TransitService
from repro.service.model import (
    BatchRequest,
    JourneyRequest,
    MinTransfersRequest,
    MulticriteriaRequest,
    ProfileRequest,
    ViaRequest,
)
from repro.timetable.delays import Delay


@runtime_checkable
class TransitBackend(Protocol):
    """The transport-agnostic query surface (see module docstring).

    Implementations: :class:`LocalBackend` (in-process),
    :class:`~repro.client.http.HttpBackend` (remote).  Pick one with
    :func:`repro.client.connect`.
    """

    def profile(
        self,
        request: ProfileRequest | int,
        *,
        targets: Sequence[int] | None = None,
    ) -> ProfileAnswer: ...

    def journey(
        self,
        request: JourneyRequest | int,
        target: int | None = None,
        *,
        departure: int | None = None,
    ) -> JourneyAnswer: ...

    def journey_many(
        self, requests: Sequence[JourneyRequest]
    ) -> list[JourneyAnswer]: ...

    def batch(
        self, request: BatchRequest | Sequence[tuple[int, int]]
    ) -> BatchAnswer: ...

    def multicriteria(
        self,
        request: MulticriteriaRequest | int,
        target: int | None = None,
        *,
        departure: int | None = None,
        max_transfers: int = 5,
    ) -> MulticriteriaAnswer: ...

    def via(
        self,
        request: ViaRequest | int,
        via: int | None = None,
        target: int | None = None,
        *,
        departure: int | None = None,
    ) -> ViaAnswer: ...

    def min_transfers(
        self,
        request: MinTransfersRequest | int,
        target: int | None = None,
        *,
        departure: int | None = None,
        max_transfers: int = 5,
    ) -> MinTransfersAnswer: ...

    def iter_batch(
        self, request: BatchRequest | Sequence[tuple[int, int]]
    ) -> Iterator[JourneyAnswer | ProfileAnswer]: ...

    def apply_delays(
        self,
        delays: Sequence[Delay],
        *,
        slack_per_leg: int = 0,
        replan: str = "full",
    ) -> DelayUpdate: ...

    def info(self) -> DatasetInfo: ...

    def close(self) -> None: ...


class LocalBackend:
    """A backend over one in-process :class:`TransitService`.

    Construct it over a live service, or over an artifact-store path —
    the store is then opened **lazily** on first use, so building a
    backend is free and a bad path surfaces where the first query
    would (as :class:`repro.store.StoreError`, exactly like
    ``TransitService.load``).

    Thread-safe the same way the server is: queries pin the current
    service reference at entry, :meth:`apply_delays` replans and swaps
    that reference under a lock (concurrent swaps serialize, in-flight
    queries drain against the generation they pinned).
    """

    def __init__(
        self,
        source: TransitService | str | Path,
        *,
        name: str | None = None,
        config=None,
    ) -> None:
        self._swap_lock = Lock()
        self._generation = 0
        if isinstance(source, TransitService):
            self._service: TransitService | None = source
            self._store: Path | None = None
            self._config = None
            self.source = "memory"
            self.name = name or source.timetable.name or "local"
        else:
            self._service = None
            self._store = Path(source)
            self._config = config
            self.source = str(source)
            self.name = name or self._store.name or "local"

    # -- lifecycle ------------------------------------------------------

    @property
    def service(self) -> TransitService:
        """The current service, warm-starting from the store on first
        access when the backend was built over a path."""
        service = self._service
        if service is None:
            with self._swap_lock:
                if self._service is None:
                    self._service = TransitService.load(
                        self._store, config=self._config
                    )
                service = self._service
        return service

    def close(self) -> None:
        """Release the service reference.  A path-built backend
        returns to its *stored* state: a later query reloads the
        pristine store, so the delay-generation counter resets with it
        (applied delays do not survive a close).  A service-built
        backend keeps its service untouched."""
        if self._store is not None:
            with self._swap_lock:
                self._service = None
                self._generation = 0

    def __enter__(self) -> "LocalBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- query shapes ----------------------------------------------------

    def profile(
        self,
        request: ProfileRequest | int,
        *,
        targets: Sequence[int] | None = None,
    ) -> ProfileAnswer:
        service = self.service
        body = wire.profile_body(wire.as_profile_request(request), targets)
        req, wire_targets = self._parse(
            parse_profile_request, body, service.timetable.num_stations
        )
        result = service.profile(req)
        return decode_profile(
            encode_profile(
                result,
                num_stations=service.timetable.num_stations,
                targets=wire_targets,
            )
        )

    def journey(
        self,
        request: JourneyRequest | int,
        target: int | None = None,
        *,
        departure: int | None = None,
    ) -> JourneyAnswer:
        service = self.service
        body = wire.journey_body(
            wire.as_journey_request(request, target, departure)
        )
        req = self._parse(
            parse_journey_request, body, service.timetable.num_stations
        )
        return decode_journey(encode_journey(service.journey(req)))

    def journey_many(
        self, requests: Sequence[JourneyRequest]
    ) -> list[JourneyAnswer]:
        """Many journeys in one engine pass.  Routed through
        :meth:`batch` — the same mapping :class:`HttpBackend` uses (one
        ``/batch`` request) — so both transports share cache behaviour
        as well as answers."""
        answer = self.batch(BatchRequest(journeys=tuple(requests)))
        return list(answer.journeys)

    def batch(
        self, request: BatchRequest | Sequence[tuple[int, int]]
    ) -> BatchAnswer:
        service = self.service
        body = wire.batch_body(wire.as_batch_request(request))
        req = self._parse(
            parse_batch_request, body, service.timetable.num_stations
        )
        return decode_batch(
            encode_batch(
                service.batch(req),
                num_stations=service.timetable.num_stations,
            )
        )

    def multicriteria(
        self,
        request: MulticriteriaRequest | int,
        target: int | None = None,
        *,
        departure: int | None = None,
        max_transfers: int = 5,
    ) -> MulticriteriaAnswer:
        service = self.service
        body = wire.multicriteria_body(
            wire.as_multicriteria_request(
                request, target, departure, max_transfers
            )
        )
        req = self._parse(
            parse_multicriteria_request, body, service.timetable.num_stations
        )
        return decode_multicriteria(
            encode_multicriteria(service.multicriteria(req))
        )

    def via(
        self,
        request: ViaRequest | int,
        via: int | None = None,
        target: int | None = None,
        *,
        departure: int | None = None,
    ) -> ViaAnswer:
        service = self.service
        body = wire.via_body(
            wire.as_via_request(request, via, target, departure)
        )
        req = self._parse(
            parse_via_request, body, service.timetable.num_stations
        )
        return decode_via(encode_via(service.via(req)))

    def min_transfers(
        self,
        request: MinTransfersRequest | int,
        target: int | None = None,
        *,
        departure: int | None = None,
        max_transfers: int = 5,
    ) -> MinTransfersAnswer:
        service = self.service
        body = wire.min_transfers_body(
            wire.as_min_transfers_request(
                request, target, departure, max_transfers
            )
        )
        req = self._parse(
            parse_min_transfers_request, body, service.timetable.num_stations
        )
        return decode_min_transfers(
            encode_min_transfers(service.min_transfers(req))
        )

    def iter_batch(
        self, request: BatchRequest | Sequence[tuple[int, int]]
    ) -> Iterator[JourneyAnswer | ProfileAnswer]:
        """Stream a batch: yield each answer as it completes instead of
        materializing a :class:`BatchAnswer`.  Items are answered (and
        yielded) in submission order, journeys before profiles — the
        same per-item execution on every transport, so answers match
        :class:`HttpBackend.iter_batch` item for item."""
        req = wire.as_batch_request(request)
        for journey in req.journeys:
            yield self.journey(journey)
        for profile in req.profiles:
            yield self.profile(profile)

    # -- delays and metadata ---------------------------------------------

    def apply_delays(
        self,
        delays: Sequence[Delay],
        *,
        slack_per_leg: int = 0,
        replan: str = "full",
    ) -> DelayUpdate:
        service = self.service
        body = wire.delays_body(delays, slack_per_leg, replan=replan)
        command = self._parse(
            parse_delay_request, body, service.timetable.num_trains
        )
        parsed, slack = list(command.delays), command.slack_per_leg
        with self._swap_lock:
            old = self._service if self._service is not None else service
            t0 = time.perf_counter()
            try:
                new = old.apply_delays(
                    parsed, slack_per_leg=slack, mode=command.replan
                )
            except ValueError as exc:
                # The same mapping the server applies to domain
                # validation the wire layer cannot see (e.g. from_stop
                # past the train's run): a typed 400.
                raise error_from_payload(
                    400,
                    {
                        "error": {
                            "code": "invalid_request",
                            "message": str(exc),
                        }
                    },
                ) from None
            elapsed = time.perf_counter() - t0
            self._service = new
            self._generation += 1
            generation = self._generation
        return DelayUpdate(
            dataset=self.name,
            generation=generation,
            num_delays=len(parsed),
            slack_per_leg=slack,
            swap_seconds=round(elapsed, 6),
        )

    def info(self) -> DatasetInfo:
        """The dataset summary, in the exact ``/v1/datasets`` entry
        shape (:meth:`repro.server.registry.DatasetEntry.describe`)."""
        service = self.service
        timetable = service.timetable
        return decode_info(
            {
                "name": self.name,
                "source": self.source,
                "generation": self._generation,
                "timetable": timetable.name,
                "stations": timetable.num_stations,
                "trains": timetable.num_trains,
                "connections": timetable.num_connections,
                "kernel": service.config.kernel,
                "has_distance_table": service.table is not None,
            }
        )

    # -- internals --------------------------------------------------------

    @staticmethod
    def _parse(parser, body: dict, bound: int):
        """Run one of the server's wire parsers; a rejection raises the
        same typed exception the HTTP transport would surface."""
        try:
            return parser(body, bound)
        except ProtocolError as exc:
            raise error_from_payload(exc.status, exc.payload()) from None


def _looks_remote(target: str) -> bool:
    return target.startswith(("http://", "https://"))


def connect(
    target: TransitService | str | Path, **options
) -> "TransitBackend":
    """One constructor for both transports.

    ``http(s)://host:port[/dataset]`` builds an
    :class:`~repro.client.http.HttpBackend` (the trailing path segment
    names the dataset; omit it when the server serves exactly one);
    anything else is a store directory (or a live
    :class:`TransitService`) behind a :class:`LocalBackend`.  Keyword
    options go to the chosen constructor.
    """
    if isinstance(target, str) and _looks_remote(target):
        # Imported here: keeps LocalBackend importable without the
        # HTTP machinery and avoids a module cycle.
        from repro.client.http import HttpBackend

        return HttpBackend(target, **options)
    return LocalBackend(target, **options)


__all__ = [
    "BatchAnswer",
    "DatasetInfo",
    "DelayUpdate",
    "JourneyAnswer",
    "LocalBackend",
    "MinTransfersAnswer",
    "MulticriteriaAnswer",
    "ProfileAnswer",
    "TransitBackend",
    "ViaAnswer",
    "connect",
]
