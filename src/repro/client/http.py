"""`HttpBackend` — the stdlib-only remote transport.

Speaks the :mod:`repro.server` wire protocol (see ``docs/SERVER.md``)
over persistent HTTP/1.1 keep-alive connections:

* **connection pool** — up to ``pool_size`` idle connections are kept
  and reused across requests (and across threads: the pool is locked,
  each in-flight request owns its connection exclusively).  A reused
  connection that the server closed while idle is replaced
  transparently and the request is re-sent once — callers never see
  the keep-alive race.
* **per-request timeouts** — ``timeout`` bounds every socket
  operation; expiry raises
  :class:`~repro.client.errors.BackendTimeoutError`.
* **bounded retry with backoff** — a retriable 503 (``overloaded`` /
  ``draining``) is retried up to ``retry.retries`` times with
  exponential backoff, honouring the server's ``Retry-After`` hint
  (capped at ``retry.max_backoff``).  Retries identify themselves with
  an ``X-Retry-Attempt`` header, which the server counts in
  ``/metrics`` (``retries_observed_total``).  An exhausted budget
  raises :class:`~repro.client.errors.OverloadedError`.
* **typed errors** — every non-200 payload maps through
  :func:`~repro.client.errors.error_from_payload`, the same mapping
  :class:`~repro.client.backend.LocalBackend` applies in-process, so
  error handling is transport-agnostic too.

Answers decode through :mod:`repro.client.results` — bitwise-identical
to :class:`LocalBackend` over the same prepared dataset
(``tests/client/test_transport_parity.py``).
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from dataclasses import dataclass, field
from threading import Lock
from typing import Iterator, Sequence
from urllib.parse import urlsplit

from repro.client import wire
from repro.client.errors import (
    BackendTimeoutError,
    OverloadedError,
    TransportError,
    error_from_payload,
)
from repro.client.results import (
    BatchAnswer,
    DatasetInfo,
    DelayUpdate,
    JourneyAnswer,
    MinTransfersAnswer,
    MulticriteriaAnswer,
    ProfileAnswer,
    ViaAnswer,
    decode_batch,
    decode_delay_update,
    decode_info,
    decode_journey,
    decode_min_transfers,
    decode_multicriteria,
    decode_profile,
    decode_via,
)
from repro.server.protocol import PROTOCOL_VERSION
from repro.service.model import (
    BatchRequest,
    JourneyRequest,
    MinTransfersRequest,
    MulticriteriaRequest,
    ProfileRequest,
    ViaRequest,
)
from repro.timetable.delays import Delay


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded retry for retriable 503s (and only those).

    Attempt ``n`` (0-based) sleeps
    ``min(max(backoff * multiplier**n, retry_after), max_backoff)``
    where ``retry_after`` is the server's hint (ignored when
    ``honor_retry_after`` is off).  ``retries=0`` disables retrying.
    """

    retries: int = 4
    backoff: float = 0.05
    multiplier: float = 2.0
    max_backoff: float = 2.0
    honor_retry_after: bool = True

    def delay(self, attempt: int, retry_after: float | None) -> float:
        backoff = self.backoff * self.multiplier**attempt
        if self.honor_retry_after and retry_after is not None:
            backoff = max(backoff, retry_after)
        return min(backoff, self.max_backoff)


@dataclass(slots=True)
class HttpBackendStats:
    """Client-side transport accounting (one per backend)."""

    requests: int = 0
    retries: int = 0
    reconnects: int = 0
    responses_by_status: dict = field(default_factory=dict)


class _ConnectionPool:
    """A small stack of reusable keep-alive connections to one host."""

    def __init__(
        self, scheme: str, host: str, port: int, *, size: int, timeout: float
    ) -> None:
        self._factory = (
            http.client.HTTPSConnection
            if scheme == "https"
            else http.client.HTTPConnection
        )
        self.host = host
        self.port = port
        self.size = size
        self.timeout = timeout
        self._idle: list[http.client.HTTPConnection] = []
        self._lock = Lock()

    def acquire(
        self, *, fresh: bool = False
    ) -> tuple[http.client.HTTPConnection, bool]:
        """Borrow a connection; ``True`` means it is reused (and may
        have been closed by the server while idle).  ``fresh`` skips
        the idle stack — for requests that must not race a stale
        keep-alive connection (non-idempotent posts, the re-send after
        a stale one already failed)."""
        if not fresh:
            with self._lock:
                if self._idle:
                    return self._idle.pop(), True
        return self._factory(self.host, self.port, timeout=self.timeout), False

    def release(
        self, conn: http.client.HTTPConnection, *, reusable: bool
    ) -> None:
        if reusable:
            with self._lock:
                if len(self._idle) < self.size:
                    self._idle.append(conn)
                    return
        conn.close()

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()


class HttpBackend:
    """A :class:`~repro.client.backend.TransitBackend` over HTTP.

    ``base_url`` is ``http(s)://host:port`` with an optional trailing
    ``/dataset`` path segment; without one (and without ``dataset=``)
    the backend asks ``/v1/datasets`` and requires the server to serve
    exactly one.  See the module docstring for pooling, timeout and
    retry semantics, and ``docs/CLIENT.md`` for the full tour.
    """

    def __init__(
        self,
        base_url: str,
        dataset: str | None = None,
        *,
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
        pool_size: int = 4,
    ) -> None:
        split = urlsplit(base_url)
        if split.scheme not in ("http", "https") or not split.hostname:
            raise ValueError(
                f"base_url must be http(s)://host[:port][/dataset], "
                f"got {base_url!r}"
            )
        path = split.path.strip("/")
        if path and dataset is None:
            dataset = path
        elif path and path != dataset:
            raise ValueError(
                f"dataset given twice and inconsistently: "
                f"{path!r} in the URL, {dataset!r} as argument"
            )
        self.base_url = f"{split.scheme}://{split.netloc}"
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.stats = HttpBackendStats()
        self._pool = _ConnectionPool(
            split.scheme,
            split.hostname,
            split.port or (443 if split.scheme == "https" else 80),
            size=pool_size,
            timeout=timeout,
        )
        self._sleep = time.sleep  # injection point for retry tests
        self._stats_lock = Lock()  # stats are shared across threads
        self._dataset = dataset

    # -- lifecycle ------------------------------------------------------

    @property
    def dataset(self) -> str:
        """The served dataset this backend talks to (resolved from
        ``/v1/datasets`` on first use when not named explicitly)."""
        if self._dataset is None:
            self._resolve_dataset(self._list_datasets())
        return self._dataset

    def _resolve_dataset(self, entries: list[DatasetInfo]) -> None:
        names = [entry.name for entry in entries]
        if len(names) != 1:
            raise ValueError(
                f"server at {self.base_url} serves {names or 'nothing'}; "
                f"name the dataset (HttpBackend(url, dataset=...) or a "
                f"/dataset URL suffix)"
            )
        self._dataset = names[0]

    def close(self) -> None:
        self._pool.close()

    def __enter__(self) -> "HttpBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- query shapes ----------------------------------------------------

    def profile(
        self,
        request: ProfileRequest | int,
        *,
        targets: Sequence[int] | None = None,
    ) -> ProfileAnswer:
        body = wire.profile_body(wire.as_profile_request(request), targets)
        return decode_profile(
            self._post(f"/v1/{self.dataset}/profile", body)
        )

    def journey(
        self,
        request: JourneyRequest | int,
        target: int | None = None,
        *,
        departure: int | None = None,
    ) -> JourneyAnswer:
        body = wire.journey_body(
            wire.as_journey_request(request, target, departure)
        )
        return decode_journey(self._post(f"/v1/{self.dataset}/journey", body))

    def journey_many(
        self, requests: Sequence[JourneyRequest]
    ) -> list[JourneyAnswer]:
        """Many journeys in one round trip (one ``/batch`` request —
        the same mapping ``LocalBackend.journey_many`` mirrors)."""
        answer = self.batch(BatchRequest(journeys=tuple(requests)))
        return list(answer.journeys)

    def batch(
        self, request: BatchRequest | Sequence[tuple[int, int]]
    ) -> BatchAnswer:
        body = wire.batch_body(wire.as_batch_request(request))
        return decode_batch(self._post(f"/v1/{self.dataset}/batch", body))

    def multicriteria(
        self,
        request: MulticriteriaRequest | int,
        target: int | None = None,
        *,
        departure: int | None = None,
        max_transfers: int = 5,
    ) -> MulticriteriaAnswer:
        body = wire.multicriteria_body(
            wire.as_multicriteria_request(
                request, target, departure, max_transfers
            )
        )
        return decode_multicriteria(
            self._post(f"/v1/{self.dataset}/multicriteria", body)
        )

    def via(
        self,
        request: ViaRequest | int,
        via: int | None = None,
        target: int | None = None,
        *,
        departure: int | None = None,
    ) -> ViaAnswer:
        body = wire.via_body(
            wire.as_via_request(request, via, target, departure)
        )
        return decode_via(self._post(f"/v1/{self.dataset}/via", body))

    def min_transfers(
        self,
        request: MinTransfersRequest | int,
        target: int | None = None,
        *,
        departure: int | None = None,
        max_transfers: int = 5,
    ) -> MinTransfersAnswer:
        body = wire.min_transfers_body(
            wire.as_min_transfers_request(
                request, target, departure, max_transfers
            )
        )
        return decode_min_transfers(
            self._post(f"/v1/{self.dataset}/min-transfers", body)
        )

    def iter_batch(
        self, request: BatchRequest | Sequence[tuple[int, int]]
    ) -> Iterator[JourneyAnswer | ProfileAnswer]:
        """Stream a batch: one wire request per item, yielding each
        answer as it arrives (submission order, journeys before
        profiles) — constant client memory however large the batch,
        and first answers arrive before the last query runs."""
        req = wire.as_batch_request(request)
        for journey in req.journeys:
            yield self.journey(journey)
        for profile in req.profiles:
            yield self.profile(profile)

    # -- delays and metadata ---------------------------------------------

    def apply_delays(
        self,
        delays: Sequence[Delay],
        *,
        slack_per_leg: int = 0,
        replan: str = "full",
    ) -> DelayUpdate:
        # Not idempotent: a replayed swap would stack the delays onto
        # the already-delayed timetable, so no transparent re-send on
        # connection failures (503 rejections happen *before* any
        # replan and stay safely retriable).
        body = wire.delays_body(delays, slack_per_leg, replan=replan)
        return decode_delay_update(
            self._post(
                f"/v1/datasets/{self.dataset}/delays",
                body,
                idempotent=False,
            )
        )

    def info(self) -> DatasetInfo:
        # One fetch serves both jobs: resolving an unnamed dataset and
        # answering with its entry.
        entries = self._list_datasets()
        if self._dataset is None:
            self._resolve_dataset(entries)
        for entry in entries:
            if entry.name == self._dataset:
                return entry
        raise error_from_payload(
            404,
            {
                "error": {
                    "code": "unknown_dataset",
                    "message": f"dataset {self.dataset!r} is not served "
                    f"by {self.base_url}",
                }
            },
        )

    def server_metrics(self) -> dict:
        """The server's ``/metrics`` document (transport-specific
        extra: a local backend has no serving metrics)."""
        return self._request("GET", "/metrics")

    # -- raw forwarding ---------------------------------------------------

    def forward(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        *,
        headers: dict[str, str] | None = None,
        idempotent: bool = True,
    ) -> tuple[int, dict, bytes]:
        """One pooled exchange, byte-for-byte: returns ``(status,
        lowercased headers, raw response body)`` without decoding,
        retrying, or raising on non-200 statuses (transport failures —
        refused, timeout, mid-body disconnect — still raise their
        typed errors).

        This is the fleet gateway's proxy primitive: a worker's answer
        passes through verbatim, so gateway answers are bitwise
        identical to the worker's and the gateway pays zero JSON cost
        on the hot path.  Stale-keep-alive re-send semantics match
        :meth:`journey` and friends: idempotent requests may be
        re-sent once on a fresh connection, non-idempotent ones never
        touch the idle pool."""
        return self._send_once(
            method,
            path,
            body,
            0,
            idempotent=idempotent,
            extra_headers=headers,
        )

    # -- transport internals ----------------------------------------------

    def _list_datasets(self) -> list[DatasetInfo]:
        payload = self._request("GET", "/v1/datasets")
        return [decode_info(raw) for raw in payload.get("datasets", [])]

    def _post(
        self, path: str, body: dict, *, idempotent: bool = True
    ) -> dict:
        return self._request(
            "POST",
            path,
            {"v": PROTOCOL_VERSION, **body},
            idempotent=idempotent,
        )

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        idempotent: bool = True,
    ) -> dict:
        """One logical request: retry loop over :meth:`_send_once`."""
        data = None if body is None else json.dumps(body).encode("utf-8")
        attempt = 0
        while True:
            status, headers, raw = self._send_once(
                method, path, data, attempt, idempotent=idempotent
            )
            try:
                payload = json.loads(raw)
            except (ValueError, UnicodeDecodeError):
                raise TransportError(
                    "invalid_response",
                    f"server answered HTTP {status} with a non-JSON body "
                    f"({len(raw)} bytes)",
                ) from None
            if status == 200:
                return payload
            retry_after = _parse_retry_after(headers.get("retry-after"))
            error = error_from_payload(
                status, payload, retry_after=retry_after, attempts=attempt + 1
            )
            retriable = isinstance(error, OverloadedError)
            if not retriable or attempt >= self.retry.retries:
                raise error
            with self._stats_lock:
                self.stats.retries += 1
            self._sleep(self.retry.delay(attempt, retry_after))
            attempt += 1

    def _send_once(
        self,
        method: str,
        path: str,
        data: bytes | None,
        attempt: int,
        *,
        idempotent: bool = True,
        extra_headers: dict[str, str] | None = None,
    ) -> tuple[int, dict, bytes]:
        """One wire exchange; returns ``(status, lowercased headers,
        raw body bytes)`` — decoding is the caller's business
        (:meth:`_request` parses JSON, :meth:`forward` passes bytes
        through untouched).

        Idempotent requests (queries are pure) first try a pooled
        keep-alive connection; if the server closed it while idle, the
        exchange is re-sent once on a **fresh** connection (never a
        second pooled one — the whole idle stack may be stale after a
        server restart).  Non-idempotent requests skip the pool's idle
        stack entirely: a stale-connection failure is then impossible,
        so no replay can ever double-apply them.
        """
        headers = {"Content-Type": "application/json"}
        if attempt > 0:
            headers["X-Retry-Attempt"] = str(attempt)
        if extra_headers:
            headers.update(extra_headers)
        passes = (False, True) if idempotent else (True,)
        for i, force_fresh in enumerate(passes):
            conn, reused = self._pool.acquire(fresh=force_fresh)
            try:
                conn.request(method, path, body=data, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except Exception as exc:  # noqa: BLE001 — mapped below
                conn.close()
                if reused and _is_stale_connection(exc) and i + 1 < len(passes):
                    # Keep-alive race: the server closed the idle
                    # connection before our bytes arrived.  Nothing
                    # ran; re-send on a fresh connection.
                    with self._stats_lock:
                        self.stats.reconnects += 1
                    continue
                raise _map_transport_error(exc, self._pool) from exc
            status = response.status
            with self._stats_lock:
                self.stats.requests += 1
                by_status = self.stats.responses_by_status
                by_status[status] = by_status.get(status, 0) + 1
            self._pool.release(
                conn, reusable=not response.will_close
            )
            return (
                status,
                {k.lower(): v for k, v in response.headers.items()},
                raw,
            )
        raise AssertionError("unreachable: the final pass raises or returns")


def _parse_retry_after(value: str | None) -> float | None:
    if value is None:
        return None
    try:
        parsed = float(value)
    except ValueError:
        return None
    return parsed if parsed >= 0 else None


def _is_stale_connection(exc: Exception) -> bool:
    """Failures that, on a *reused* connection, mean the server closed
    it while idle — before our request bytes were processed."""
    return isinstance(
        exc,
        (
            http.client.RemoteDisconnected,
            ConnectionResetError,
            BrokenPipeError,
            http.client.CannotSendRequest,
        ),
    )


def _map_transport_error(
    exc: Exception, pool: _ConnectionPool
) -> TransportError:
    where = f"{pool.host}:{pool.port}"
    if isinstance(exc, (socket.timeout, TimeoutError)):
        return BackendTimeoutError(
            "timeout",
            f"no complete response from {where} within {pool.timeout:g}s",
        )
    if isinstance(exc, ConnectionRefusedError):
        return TransportError(
            "connection_refused", f"nothing is listening on {where}"
        )
    if isinstance(
        exc,
        (
            http.client.RemoteDisconnected,
            http.client.IncompleteRead,
            ConnectionResetError,
            BrokenPipeError,
            EOFError,
        ),
    ):
        return TransportError(
            "disconnected",
            f"{where} closed the connection mid-exchange: {exc}",
        )
    if isinstance(exc, (http.client.HTTPException, OSError)):
        return TransportError(
            "transport", f"HTTP exchange with {where} failed: {exc}"
        )
    raise exc


__all__ = ["HttpBackend", "HttpBackendStats", "RetryPolicy"]
