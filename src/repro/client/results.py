"""Transport-neutral answers and the wire → object decoders.

Every :class:`~repro.client.backend.TransitBackend` answer is decoded
from the *canonical wire encoding* (:mod:`repro.server.protocol`'s
``encode_*`` output) by the functions here — the HTTP backend decodes
what arrived over TCP, the local backend decodes what it encoded
in-process — so a program sees structurally identical objects from
both transports, down to the last integer.  That is the other half of
the bitwise-parity guarantee (requests are unified by
:mod:`repro.client.wire`).

The per-query accounting reuses the service layer's own types
(:class:`~repro.service.model.QueryStats`,
:class:`~repro.service.model.JourneyLeg`,
:class:`~repro.query.batch.BatchStats`) — only the *profile payloads*
need a client-side representation, because a wire profile is the
reduced connection-point list, not the packed
:class:`~repro.functions.algebra.Profile` object the facade holds.
:class:`ConnectionProfile` carries those points with the same
evaluation semantics (``earliest_arrival`` follows the paper's cyclic
two-candidate rule exactly — ``tests/client/test_backend_local.py``
pins it against :class:`Profile` point-for-point).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.functions.piecewise import INF_TIME
from repro.query.batch import BatchStats
from repro.service.model import JourneyLeg, ParetoOption, QueryStats
from repro.timetable.periodic import DAY_MINUTES


# ---------------------------------------------------------------------------
# Profile payloads
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ConnectionProfile:
    """A reduced profile as it travels over the wire: the connection
    points ``(departure anchor, duration)`` of ``dist(S, T, ·)``.

    Mirrors the read API of :class:`~repro.functions.algebra.Profile`
    (``connection_points``, ``earliest_arrival``, ``travel_time``,
    ``is_empty``, ``len``) so code written against the facade's
    profiles runs unchanged against backend answers.
    """

    points: tuple[tuple[int, int], ...]
    period: int = DAY_MINUTES
    #: Lazy (deps, arrs) arrays — built on the first evaluation so a
    #: sweep over departure times bisects instead of re-deriving the
    #: lists per call.  Excluded from equality/repr: derived state.
    _eval: tuple[list[int], list[int]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.points)

    def is_empty(self) -> bool:
        return not self.points

    def connection_points(self) -> list[tuple[int, int]]:
        return list(self.points)

    def earliest_arrival(self, tau: int) -> int:
        """Earliest absolute arrival departing at or after ``tau`` —
        the same cyclic evaluation as ``Profile.earliest_arrival``:
        of the next same-day anchor and the first anchor of the next
        day, the earlier arrival wins."""
        if not self.points:
            return INF_TIME
        if self._eval is None:
            # frozen dataclass: the cache slot is set through the back
            # door, like Profile does with its lazy point lists.
            object.__setattr__(
                self,
                "_eval",
                (
                    [dep for dep, _ in self.points],
                    [dep + dur for dep, dur in self.points],
                ),
            )
        deps, arrs = self._eval
        tau_mod = tau % self.period
        base = tau - tau_mod
        idx = bisect_left(deps, tau_mod)
        tomorrow = self.period + arrs[0]
        if idx < len(deps):
            today = arrs[idx]
            return base + (today if today < tomorrow else tomorrow)
        return base + tomorrow

    def travel_time(self, tau: int) -> int:
        arrival = self.earliest_arrival(tau)
        return arrival - tau if arrival < INF_TIME else INF_TIME


# ---------------------------------------------------------------------------
# Answers
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class JourneyAnswer:
    """A journey answered by a backend (either transport).

    ``profile`` is the full reduced profile; ``arrival``/``legs`` are
    set when the request named a departure time (``arrival`` is
    :data:`~repro.functions.piecewise.INF_TIME` when unreachable).
    """

    source: int
    target: int
    reachable: bool
    profile: ConnectionProfile
    stats: QueryStats
    departure: int | None = None
    arrival: int | None = None
    legs: tuple[JourneyLeg, ...] | None = None

    def earliest_arrival(self, tau: int) -> int:
        if self.source == self.target:
            return tau
        return self.profile.earliest_arrival(tau)


@dataclass(frozen=True, slots=True)
class ProfileAnswer:
    """A one-to-all profile search answered by a backend.

    ``profiles`` maps every encoded target station (all stations but
    the source, or the request's ``targets`` restriction) to its
    reduced profile.
    """

    source: int
    profiles: Mapping[int, ConnectionProfile]
    stats: QueryStats

    def profile(self, station: int) -> ConnectionProfile:
        return self.profiles[station]

    def earliest_arrival(self, station: int, tau: int) -> int:
        if station == self.source:
            return tau
        return self.profiles[station].earliest_arrival(tau)


@dataclass(frozen=True, slots=True)
class BatchAnswer:
    """A batched workload answered by a backend; items are in
    submission order, ``stats`` aggregates the whole batch."""

    journeys: tuple[JourneyAnswer, ...]
    profiles: tuple[ProfileAnswer, ...]
    stats: BatchStats

    def __len__(self) -> int:
        return len(self.journeys) + len(self.profiles)

    def __iter__(self) -> Iterator[JourneyAnswer | ProfileAnswer]:
        yield from self.journeys
        yield from self.profiles


@dataclass(frozen=True, slots=True)
class MulticriteriaAnswer:
    """A Pareto query answered by a backend (either transport).

    ``options`` is the (transfers, arrival) front in increasing
    transfer order; ``legs`` the fastest option's itinerary when it is
    reconstructible within the budget.
    """

    source: int
    target: int
    departure: int
    max_transfers: int
    reachable: bool
    options: tuple[ParetoOption, ...]
    stats: QueryStats
    legs: tuple[JourneyLeg, ...] | None = None

    @property
    def best_arrival(self) -> int:
        """Earliest arrival over the whole front (INF when empty)."""
        return self.options[-1].arrival if self.options else INF_TIME


@dataclass(frozen=True, slots=True)
class ViaAnswer:
    """A via-constrained journey answered by a backend: earliest
    arrival at ``via``, then onward to ``target``."""

    source: int
    via: int
    target: int
    departure: int
    via_arrival: int
    arrival: int
    reachable: bool
    stats: QueryStats
    legs: tuple[JourneyLeg, ...] | None = None


@dataclass(frozen=True, slots=True)
class MinTransfersAnswer:
    """A transfer-minimizing journey answered by a backend:
    ``transfers`` is ``None`` when the target is unreachable within
    the budget (``arrival`` is then INF)."""

    source: int
    target: int
    departure: int
    max_transfers: int
    reachable: bool
    transfers: int | None
    arrival: int
    stats: QueryStats
    legs: tuple[JourneyLeg, ...] | None = None


@dataclass(frozen=True, slots=True)
class DatasetInfo:
    """What a backend serves: the ``/v1/datasets`` entry shape."""

    name: str
    source: str
    generation: int
    timetable: str
    stations: int
    trains: int
    connections: int
    kernel: str
    has_distance_table: bool


@dataclass(frozen=True, slots=True)
class DelayUpdate:
    """Acknowledgement of an applied delay scenario."""

    dataset: str
    generation: int
    num_delays: int
    slack_per_leg: int
    swap_seconds: float


# ---------------------------------------------------------------------------
# Decoders (inverse of repro.server.protocol's encode_*)
# ---------------------------------------------------------------------------


def _decode_points(raw) -> ConnectionProfile:
    return ConnectionProfile(
        points=tuple((int(dep), int(dur)) for dep, dur in raw)
    )


def decode_query_stats(raw: dict) -> QueryStats:
    return QueryStats(
        kind=raw["kind"],
        kernel=raw["kernel"],
        num_threads=raw["num_threads"],
        settled_connections=raw["settled_connections"],
        simulated_seconds=raw["simulated_seconds"],
        total_seconds=raw["total_seconds"],
        classification=raw.get("classification"),
        table_prunes=raw.get("table_prunes", 0),
        connection_stops=raw.get("connection_stops", 0),
        cache_hit=raw.get("cache_hit", False),
    )


def decode_batch_stats(raw: dict) -> BatchStats:
    return BatchStats(
        num_queries=raw["num_queries"],
        backend=raw["backend"],
        kernel=raw["kernel"],
        num_workers=raw["num_workers"],
        setup_seconds=raw["setup_seconds"],
        total_seconds=raw["total_seconds"],
    )


def decode_journey(payload: dict) -> JourneyAnswer:
    legs = payload.get("legs")
    return JourneyAnswer(
        source=payload["source"],
        target=payload["target"],
        reachable=payload["reachable"],
        profile=_decode_points(payload["profile"]),
        stats=decode_query_stats(payload["stats"]),
        departure=payload.get("departure"),
        arrival=payload.get("arrival"),
        legs=None
        if legs is None
        else tuple(
            JourneyLeg(
                from_station=leg["from_station"],
                to_station=leg["to_station"],
                departure=leg["departure"],
                arrival=leg["arrival"],
            )
            for leg in legs
        ),
    )


def decode_profile(payload: dict) -> ProfileAnswer:
    return ProfileAnswer(
        source=payload["source"],
        profiles={
            int(station): _decode_points(points)
            for station, points in payload["profiles"].items()
        },
        stats=decode_query_stats(payload["stats"]),
    )


def decode_batch(payload: dict) -> BatchAnswer:
    return BatchAnswer(
        journeys=tuple(decode_journey(j) for j in payload["journeys"]),
        profiles=tuple(decode_profile(p) for p in payload["profiles"]),
        stats=decode_batch_stats(payload["stats"]),
    )


def decode_multicriteria(payload: dict) -> MulticriteriaAnswer:
    legs = payload["legs"]
    return MulticriteriaAnswer(
        source=payload["source"],
        target=payload["target"],
        departure=payload["departure"],
        max_transfers=payload["max_transfers"],
        reachable=payload["reachable"],
        options=tuple(
            ParetoOption(int(k), int(arr)) for k, arr in payload["options"]
        ),
        stats=decode_query_stats(payload["stats"]),
        legs=None
        if legs is None
        else tuple(
            JourneyLeg(
                from_station=leg["from_station"],
                to_station=leg["to_station"],
                departure=leg["departure"],
                arrival=leg["arrival"],
            )
            for leg in legs
        ),
    )


def decode_via(payload: dict) -> ViaAnswer:
    legs = payload["legs"]
    return ViaAnswer(
        source=payload["source"],
        via=payload["via"],
        target=payload["target"],
        departure=payload["departure"],
        via_arrival=payload["via_arrival"],
        arrival=payload["arrival"],
        reachable=payload["reachable"],
        stats=decode_query_stats(payload["stats"]),
        legs=None
        if legs is None
        else tuple(
            JourneyLeg(
                from_station=leg["from_station"],
                to_station=leg["to_station"],
                departure=leg["departure"],
                arrival=leg["arrival"],
            )
            for leg in legs
        ),
    )


def decode_min_transfers(payload: dict) -> MinTransfersAnswer:
    legs = payload["legs"]
    return MinTransfersAnswer(
        source=payload["source"],
        target=payload["target"],
        departure=payload["departure"],
        max_transfers=payload["max_transfers"],
        reachable=payload["reachable"],
        transfers=payload["transfers"],
        arrival=payload["arrival"],
        stats=decode_query_stats(payload["stats"]),
        legs=None
        if legs is None
        else tuple(
            JourneyLeg(
                from_station=leg["from_station"],
                to_station=leg["to_station"],
                departure=leg["departure"],
                arrival=leg["arrival"],
            )
            for leg in legs
        ),
    )


def decode_info(raw: dict) -> DatasetInfo:
    return DatasetInfo(
        name=raw["name"],
        source=raw["source"],
        generation=raw["generation"],
        timetable=raw["timetable"],
        stations=raw["stations"],
        trains=raw["trains"],
        connections=raw["connections"],
        kernel=raw["kernel"],
        has_distance_table=raw["has_distance_table"],
    )


def decode_delay_update(payload: dict) -> DelayUpdate:
    return DelayUpdate(
        dataset=payload["dataset"],
        generation=payload["generation"],
        num_delays=payload["num_delays"],
        slack_per_leg=payload["slack_per_leg"],
        swap_seconds=payload["swap_seconds"],
    )
