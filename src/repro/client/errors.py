"""The client SDK's typed exception hierarchy.

One hierarchy for both transports: every failure a
:class:`~repro.client.backend.TransitBackend` can raise is a
:class:`BackendError`, and the *same* condition raises the *same*
exception type whichever backend answered.  Server error payloads
(``{"error": {"code", "message", "field"}}``, see
:mod:`repro.server.protocol`) map onto it through
:func:`error_from_payload`; :class:`~repro.client.backend.LocalBackend`
routes its in-process validation through the very same mapping, so a
caller's ``except`` clauses cannot tell transports apart.

The hierarchy also stays compatible with what the facade layer raises
directly: :class:`BadRequestError` **is a** ``ValueError`` (the facade
rejects bad delays with ``ValueError``) and
:class:`UnknownDatasetError` **is a** ``KeyError`` (mirroring
:class:`repro.server.registry.RegistryError`) — pre-client call sites
catching the built-in types keep working unchanged.

Transport-level failures (connection refused, mid-body disconnect,
request timeout) can only happen over HTTP and raise
:class:`TransportError` / :class:`BackendTimeoutError`; a retriable 503
that survives the bounded retry budget raises :class:`OverloadedError`
with the server's ``Retry-After`` hint attached.
"""

from __future__ import annotations


class BackendError(Exception):
    """Base of every error a :class:`TransitBackend` raises.

    ``code`` is the stable machine-readable identifier (the wire
    protocol's error code, or a transport-level one such as
    ``"timeout"``); ``message`` is human-readable and not contractual;
    ``field`` names the offending request field when one could be
    singled out; ``status`` is the HTTP status the condition maps to
    (also set by :class:`LocalBackend` for parity).
    """

    def __init__(
        self,
        code: str,
        message: str,
        *,
        field: str | None = None,
        status: int | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.field = field
        self.status = status

    def __str__(self) -> str:
        suffix = f" (field: {self.field})" if self.field else ""
        return f"[{self.code}] {self.message}{suffix}"


class TransportError(BackendError):
    """A network-level failure before a complete response arrived:
    connection refused (``code="connection_refused"``), the server
    vanished mid-body (``"disconnected"``), or an unparseable response
    (``"invalid_response"``).  Only :class:`HttpBackend` raises these —
    they are the one observable difference between transports, and they
    mean *no answer*, never a wrong one."""


class BackendTimeoutError(TransportError):
    """The per-request timeout elapsed before the response completed
    (``code="timeout"``).  The request may or may not have executed
    server-side; queries are pure, so retrying is always safe."""


class BadRequestError(BackendError, ValueError):
    """The request itself is invalid (HTTP 400-class): unknown field,
    wrong type, out-of-range station or train, bad delay.  Carries the
    wire protocol's typed payload (``code``/``message``/``field``).
    Also a :class:`ValueError`, matching what the service facade raises
    for the same conditions in-process."""


class UnknownDatasetError(BackendError, KeyError):
    """The named dataset is not served (HTTP 404 ``unknown_dataset``).
    Also a :class:`KeyError`, matching
    :class:`repro.server.registry.RegistryError`."""

    def __str__(self) -> str:  # KeyError would repr() the args tuple
        return BackendError.__str__(self)


class OverloadedError(BackendError):
    """Every retry attempt was answered with a retriable 503
    (``code`` ``"overloaded"`` or ``"draining"``).  ``retry_after``
    carries the server's last ``Retry-After`` hint in seconds (``None``
    when the server sent none), ``attempts`` how many requests were
    made before giving up."""

    def __init__(
        self,
        code: str,
        message: str,
        *,
        retry_after: float | None = None,
        attempts: int = 1,
        field: str | None = None,
    ) -> None:
        super().__init__(code, message, field=field, status=503)
        self.retry_after = retry_after
        self.attempts = attempts


class ServerInternalError(BackendError):
    """The server failed to answer (HTTP 500 ``internal``): a bug on
    the serving side, not in the request."""


def error_from_payload(
    status: int,
    payload: object,
    *,
    retry_after: float | None = None,
    attempts: int = 1,
) -> BackendError:
    """Map a wire error payload onto the typed hierarchy.

    This is the single mapping both backends share:
    :class:`HttpBackend` feeds it non-200 response bodies,
    :class:`LocalBackend` feeds it
    :meth:`~repro.server.protocol.ProtocolError.payload` from its
    in-process validation — identical exceptions either way.
    """
    error = payload.get("error", {}) if isinstance(payload, dict) else {}
    code = error.get("code", "internal")
    message = error.get("message", f"server answered HTTP {status}")
    field = error.get("field")
    if code == "unknown_dataset":
        return UnknownDatasetError(code, message, status=status)
    if status == 503 or code in ("overloaded", "draining"):
        return OverloadedError(
            code, message, retry_after=retry_after, attempts=attempts,
            field=field,
        )
    if status >= 500:
        return ServerInternalError(code, message, field=field, status=status)
    return BadRequestError(code, message, field=field, status=status)
