"""Lazy priority queue on top of :mod:`heapq`.

``decrease-key`` is emulated by pushing a duplicate entry and skipping
stale ones at ``pop`` time.  Often fastest in CPython because ``heapq``
is implemented in C — the heap ablation quantifies this against the
addressable heaps.
"""

from __future__ import annotations

import heapq
from typing import Hashable


class LazyHeap:
    """heapq-backed queue with lazy deletion; addressable-heap protocol."""

    __slots__ = ("_heap", "_best", "_counter", "pushes", "pops", "decrease_keys")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Hashable]] = []
        self._best: dict[Hashable, int] = {}
        self._counter = 0  # tie-break so items never compare
        self.pushes = 0
        self.pops = 0
        self.decrease_keys = 0

    def __len__(self) -> int:
        return len(self._best)

    def __bool__(self) -> bool:
        return bool(self._best)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._best

    def key_of(self, item: Hashable) -> int:
        return self._best[item]

    def push(self, item: Hashable, key: int) -> bool:
        current = self._best.get(item)
        if current is not None and key >= current:
            return False
        if current is None:
            self.pushes += 1
        else:
            self.decrease_keys += 1
        self._best[item] = key
        self._counter += 1
        heapq.heappush(self._heap, (key, self._counter, item))
        return True

    def pop(self) -> tuple[Hashable, int]:
        while self._heap:
            key, _tie, item = heapq.heappop(self._heap)
            if self._best.get(item) == key:
                del self._best[item]
                self.pops += 1
                return item, key
        raise IndexError("pop from empty heap")

    def peek(self) -> tuple[Hashable, int]:
        while self._heap:
            key, _tie, item = self._heap[0]
            if self._best.get(item) == key:
                return item, key
            heapq.heappop(self._heap)
        raise IndexError("peek at empty heap")

    def discard(self, item: Hashable) -> bool:
        # Stale heap entries are skipped lazily at pop time.
        return self._best.pop(item, None) is not None
