"""Priority queues.

The paper's implementation uses a binary heap.  We provide an
addressable binary heap with ``decrease-key`` (the default), a
generalized d-ary variant, and a lazy ``heapq``-based queue; the heap
ablation bench (`benchmarks/bench_ablation_heap.py`) compares them.

All queues share one protocol over integer item ids:

* ``push(item, key)`` — insert or decrease-key;
* ``pop()`` — remove and return ``(item, key)`` with minimum key;
* ``__len__`` / ``__bool__`` — number of *live* items.
"""

from repro.pq.binary_heap import AddressableHeap
from repro.pq.dary_heap import DaryHeap
from repro.pq.lazy_heap import LazyHeap

QUEUE_FACTORIES = {
    "binary": AddressableHeap,
    "4-ary": lambda: DaryHeap(arity=4),
    "lazy": LazyHeap,
}

__all__ = ["AddressableHeap", "DaryHeap", "LazyHeap", "QUEUE_FACTORIES"]
