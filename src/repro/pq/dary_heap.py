"""Addressable d-ary min-heap.

Same protocol as :class:`repro.pq.binary_heap.AddressableHeap` but with
configurable arity.  Wider heaps trade cheaper ``decrease-key`` /
``push`` (shallower tree) for costlier ``pop`` (d comparisons per
level); the heap ablation bench measures the effect on SPCS.
"""

from __future__ import annotations

from typing import Hashable


class DaryHeap:
    """Addressable d-ary min-heap with decrease-key."""

    __slots__ = ("_arity", "_keys", "_items", "_pos", "pushes", "pops", "decrease_keys")

    def __init__(self, arity: int = 4) -> None:
        if arity < 2:
            raise ValueError(f"arity must be at least 2, got {arity}")
        self._arity = arity
        self._keys: list[int] = []
        self._items: list[Hashable] = []
        self._pos: dict[Hashable, int] = {}
        self.pushes = 0
        self.pops = 0
        self.decrease_keys = 0

    @property
    def arity(self) -> int:
        return self._arity

    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._pos

    def key_of(self, item: Hashable) -> int:
        return self._keys[self._pos[item]]

    def push(self, item: Hashable, key: int) -> bool:
        pos = self._pos.get(item)
        if pos is None:
            self._keys.append(key)
            self._items.append(item)
            self._pos[item] = len(self._keys) - 1
            self._sift_up(len(self._keys) - 1)
            self.pushes += 1
            return True
        if key < self._keys[pos]:
            self._keys[pos] = key
            self._sift_up(pos)
            self.decrease_keys += 1
            return True
        return False

    def pop(self) -> tuple[Hashable, int]:
        if not self._keys:
            raise IndexError("pop from empty heap")
        item, key = self._items[0], self._keys[0]
        del self._pos[item]
        last_key, last_item = self._keys.pop(), self._items.pop()
        if self._keys:
            self._keys[0], self._items[0] = last_key, last_item
            self._pos[last_item] = 0
            self._sift_down(0)
        self.pops += 1
        return item, key

    def peek(self) -> tuple[Hashable, int]:
        if not self._keys:
            raise IndexError("peek at empty heap")
        return self._items[0], self._keys[0]

    def discard(self, item: Hashable) -> bool:
        pos = self._pos.get(item)
        if pos is None:
            return False
        del self._pos[item]
        last_key, last_item = self._keys.pop(), self._items.pop()
        if pos < len(self._keys):
            old_key = self._keys[pos]
            self._keys[pos], self._items[pos] = last_key, last_item
            self._pos[last_item] = pos
            if last_key < old_key:
                self._sift_up(pos)
            else:
                self._sift_down(pos)
        return True

    def _sift_up(self, pos: int) -> None:
        keys, items, index, d = self._keys, self._items, self._pos, self._arity
        key, item = keys[pos], items[pos]
        while pos > 0:
            parent = (pos - 1) // d
            if keys[parent] <= key:
                break
            keys[pos], items[pos] = keys[parent], items[parent]
            index[items[pos]] = pos
            pos = parent
        keys[pos], items[pos] = key, item
        index[item] = pos

    def _sift_down(self, pos: int) -> None:
        keys, items, index, d = self._keys, self._items, self._pos, self._arity
        n = len(keys)
        key, item = keys[pos], items[pos]
        while True:
            first_child = d * pos + 1
            if first_child >= n:
                break
            best = first_child
            best_key = keys[first_child]
            for child in range(first_child + 1, min(first_child + d, n)):
                if keys[child] < best_key:
                    best, best_key = child, keys[child]
            if best_key >= key:
                break
            keys[pos], items[pos] = best_key, items[best]
            index[items[pos]] = pos
            pos = best
        keys[pos], items[pos] = key, item
        index[item] = pos
