"""Addressable binary min-heap with decrease-key.

Items are arbitrary hashable ids (the algorithms use ints or
(node, connection) tuples); a position map supports O(log n)
``decrease-key`` via re-``push``.  Matches the queue the paper's C++
implementation uses.
"""

from __future__ import annotations

from typing import Hashable


class AddressableHeap:
    """Binary min-heap keyed by integers with an item→position index."""

    __slots__ = ("_keys", "_items", "_pos", "pushes", "pops", "decrease_keys")

    def __init__(self) -> None:
        self._keys: list[int] = []
        self._items: list[Hashable] = []
        self._pos: dict[Hashable, int] = {}
        #: Operation counters (inspected by benches and tests).
        self.pushes = 0
        self.pops = 0
        self.decrease_keys = 0

    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._pos

    def key_of(self, item: Hashable) -> int:
        """Current key of a contained item."""
        return self._keys[self._pos[item]]

    def push(self, item: Hashable, key: int) -> bool:
        """Insert ``item`` or decrease its key.

        Returns True if the queue changed (new item, or key decreased);
        an attempted key *increase* is ignored and returns False, which
        is the semantics Dijkstra-style relaxation wants.
        """
        pos = self._pos.get(item)
        if pos is None:
            self._keys.append(key)
            self._items.append(item)
            self._pos[item] = len(self._keys) - 1
            self._sift_up(len(self._keys) - 1)
            self.pushes += 1
            return True
        if key < self._keys[pos]:
            self._keys[pos] = key
            self._sift_up(pos)
            self.decrease_keys += 1
            return True
        return False

    def pop(self) -> tuple[Hashable, int]:
        """Remove and return the minimum ``(item, key)``."""
        if not self._keys:
            raise IndexError("pop from empty heap")
        item, key = self._items[0], self._keys[0]
        del self._pos[item]
        last_key, last_item = self._keys.pop(), self._items.pop()
        if self._keys:
            self._keys[0], self._items[0] = last_key, last_item
            self._pos[last_item] = 0
            self._sift_down(0)
        self.pops += 1
        return item, key

    def peek(self) -> tuple[Hashable, int]:
        """Return the minimum ``(item, key)`` without removing it."""
        if not self._keys:
            raise IndexError("peek at empty heap")
        return self._items[0], self._keys[0]

    def discard(self, item: Hashable) -> bool:
        """Remove ``item`` if present; returns whether it was contained.

        Used by the stopping criterion, which prunes whole connection
        classes out of the queue.
        """
        pos = self._pos.get(item)
        if pos is None:
            return False
        del self._pos[item]
        last_key, last_item = self._keys.pop(), self._items.pop()
        if pos < len(self._keys):
            old_key = self._keys[pos]
            self._keys[pos], self._items[pos] = last_key, last_item
            self._pos[last_item] = pos
            if last_key < old_key:
                self._sift_up(pos)
            else:
                self._sift_down(pos)
        return True

    def _sift_up(self, pos: int) -> None:
        keys, items, index = self._keys, self._items, self._pos
        key, item = keys[pos], items[pos]
        while pos > 0:
            parent = (pos - 1) >> 1
            if keys[parent] <= key:
                break
            keys[pos], items[pos] = keys[parent], items[parent]
            index[items[pos]] = pos
            pos = parent
        keys[pos], items[pos] = key, item
        index[item] = pos

    def _sift_down(self, pos: int) -> None:
        keys, items, index = self._keys, self._items, self._pos
        n = len(keys)
        key, item = keys[pos], items[pos]
        while True:
            child = 2 * pos + 1
            if child >= n:
                break
            right = child + 1
            if right < n and keys[right] < keys[child]:
                child = right
            if keys[child] >= key:
                break
            keys[pos], items[pos] = keys[child], items[child]
            index[items[pos]] = pos
            pos = child
        keys[pos], items[pos] = key, item
        index[item] = pos
