"""Connection reduction (paper §3.1).

The raw label set ``P̂`` of a profile search contains one point per
outgoing connection of the source: ``(τ_dep(c_i), arr(v, i))``.  Because
taking an early train in the wrong direction is never *worse-ordered*
than waiting for a direct one, ``P̂`` need not be FIFO.  The reduction
scans backward, keeping track of the minimum arrival time seen, and
deletes every point whose arrival is not strictly earlier than any
later-departing point — the survivors are exactly
``P(dist(S, T, ·))``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.functions.piecewise import INF_TIME


def reduction_mask(arrivals: Sequence[int] | np.ndarray) -> np.ndarray:
    """Boolean keep-mask for the backward dominance scan.

    ``arrivals[i]`` is the (absolute) arrival time when starting with the
    ``i``-th outgoing connection, ordered by non-decreasing departure
    time; ``INF_TIME`` marks pruned/unreachable connections.  Point ``i``
    survives iff its arrival is strictly smaller than every arrival of a
    later connection (and is finite).

    Vectorized: survivors are where the reversed running minimum strictly
    improves.
    """
    arr = np.asarray(arrivals, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D arrival vector, got shape {arr.shape}")
    n = arr.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    # Suffix minimum over arrivals *after* i (exclusive).
    suffix_min = np.empty(n, dtype=np.int64)
    suffix_min[-1] = INF_TIME
    if n > 1:
        suffix_min[:-1] = np.minimum.accumulate(arr[::-1])[::-1][1:]
    return (arr < suffix_min) & (arr < INF_TIME)


def reduce_connection_points(
    dep_times: Sequence[int] | np.ndarray,
    arrivals: Sequence[int] | np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply connection reduction, returning ``(deps, arrs)`` of survivors.

    Inputs are parallel vectors: departure time of connection ``i`` (the
    anchor ``τ_dep(c_i)``) and arrival at the node in question.  Output
    arrivals are strictly increasing with departure time, so the surviving
    points form a FIFO profile: departing later never arrives earlier.
    """
    deps = np.asarray(dep_times, dtype=np.int64)
    arr = np.asarray(arrivals, dtype=np.int64)
    if deps.shape != arr.shape:
        raise ValueError(
            f"departure/arrival vectors must be parallel, got "
            f"{deps.shape} vs {arr.shape}"
        )
    mask = reduction_mask(arr)
    return deps[mask], arr[mask]


def is_reduced(arrivals: Sequence[int] | np.ndarray) -> bool:
    """True iff the arrival vector is already reduced (strictly
    increasing and free of ``INF_TIME``)."""
    arr = np.asarray(arrivals, dtype=np.int64)
    if arr.size == 0:
        return True
    if (arr >= INF_TIME).any():
        return False
    return bool((np.diff(arr) > 0).all())
