"""Profile functions ``dist(S, T, ·)`` and their algebra.

A :class:`Profile` is the answer to a profile query toward one target:
for every relevant departure time from the source, the earliest arrival
at the target.  It is stored as parallel vectors of departure anchors
(time points of ``conn(S)``, non-decreasing) and absolute arrivals, in
*reduced* (FIFO) form.

The class supports evaluation (earliest arrival when departing at or
after ``τ``), travel-time lookup, pointwise minimum (used when merging
per-thread results), and dominance tests used throughout the test
suite.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Sequence

import numpy as np

from repro.functions.piecewise import INF_TIME
from repro.functions.reduction import reduce_connection_points
from repro.timetable.periodic import DAY_MINUTES


class Profile:
    """A reduced travel-time profile toward a single target station."""

    __slots__ = ("deps", "arrs", "period", "_deps_list", "_arrs_list")

    def __init__(
        self,
        deps: Sequence[int] | np.ndarray,
        arrs: Sequence[int] | np.ndarray,
        period: int = DAY_MINUTES,
    ) -> None:
        deps_arr = np.asarray(deps, dtype=np.int64)
        arrs_arr = np.asarray(arrs, dtype=np.int64)
        if deps_arr.shape != arrs_arr.shape or deps_arr.ndim != 1:
            raise ValueError(
                f"deps/arrs must be parallel 1-D vectors, got "
                f"{deps_arr.shape} vs {arrs_arr.shape}"
            )
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if deps_arr.size:
            if (np.diff(deps_arr) < 0).any():
                raise ValueError("departure anchors must be non-decreasing")
            if (arrs_arr < deps_arr).any():
                raise ValueError("arrival before departure in profile")
        self.deps = deps_arr
        self.arrs = arrs_arr
        self.period = period
        # Python-list mirrors for scalar evaluation: bisect on a list is
        # several times faster than np.searchsorted on a scalar, and the
        # distance-table pruner evaluates profiles once per settle.
        self._deps_list: list[int] | None = None
        self._arrs_list: list[int] | None = None

    @classmethod
    def from_raw(
        cls,
        deps: Sequence[int] | np.ndarray,
        arrs: Sequence[int] | np.ndarray,
        period: int = DAY_MINUTES,
    ) -> "Profile":
        """Build from a raw (unreduced) label vector: applies connection
        reduction first (paper §3.1)."""
        reduced_deps, reduced_arrs = reduce_connection_points(deps, arrs)
        return cls(reduced_deps, reduced_arrs, period)

    def __len__(self) -> int:
        return int(self.deps.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Profile):
            return NotImplemented
        return (
            self.period == other.period
            and self.deps.shape == other.deps.shape
            and bool((self.deps == other.deps).all())
            and bool((self.arrs == other.arrs).all())
        )

    def __hash__(self) -> int:  # pragma: no cover - profiles are not dict keys
        return hash((self.period, self.deps.tobytes(), self.arrs.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Profile({len(self)} points, period={self.period})"

    def is_empty(self) -> bool:
        """True when the target is unreachable for every departure."""
        return self.deps.size == 0

    def earliest_arrival(self, tau: int) -> int:
        """Earliest absolute arrival when departing at or after time
        point ``tau`` (reduced mod period).  ``INF_TIME`` if empty.

        Evaluation follows the paper's representation semantics:
        ``f(τ) = Δ(τ, τ_f) + w_f`` for the point *minimizing* the cyclic
        wait-plus-ride total.  With reduced (strictly increasing)
        arrivals only two candidates can win: the next anchor of the
        current day and the first anchor of the next day (a very slow
        same-day connection may lose to waiting past midnight).  The
        returned arrival is expressed relative to ``tau``'s day.
        """
        if self._deps_list is None:
            self._deps_list = self.deps.tolist()
            self._arrs_list = self.arrs.tolist()
        deps = self._deps_list
        if not deps:
            return INF_TIME
        arrs = self._arrs_list
        tau_mod = tau % self.period
        base = tau - tau_mod
        idx = bisect_left(deps, tau_mod)
        tomorrow = self.period + arrs[0]
        if idx < len(deps):
            today = arrs[idx]
            return base + (today if today < tomorrow else tomorrow)
        return base + tomorrow

    def travel_time(self, tau: int) -> int:
        """``dist(S, T, τ)``: waiting plus riding time departing at ``τ``."""
        arrival = self.earliest_arrival(tau)
        return arrival - tau if arrival < INF_TIME else INF_TIME

    def connection_points(self) -> list[tuple[int, int]]:
        """``P(dist(S,T,·))`` as (departure anchor, duration) pairs."""
        return [
            (int(d), int(a - d)) for d, a in zip(self.deps, self.arrs)
        ]

    def minimum(self, other: "Profile") -> "Profile":
        """Pointwise minimum of two reduced profiles.

        Concatenates the anchor sets, keeps per-anchor best arrivals and
        re-reduces.  Used by tests and by the distance-table builder when
        combining partial results.
        """
        if self.period != other.period:
            raise ValueError("cannot merge profiles with different periods")
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        deps = np.concatenate([self.deps, other.deps])
        arrs = np.concatenate([self.arrs, other.arrs])
        order = np.lexsort((arrs, deps))
        return Profile.from_raw(deps[order], arrs[order], self.period)

    def dominates(self, other: "Profile") -> bool:
        """True iff this profile is at least as good as ``other`` at every
        departure time (checked at both profiles' anchors)."""
        if self.period != other.period:
            raise ValueError("cannot compare profiles with different periods")
        anchors = np.unique(np.concatenate([self.deps, other.deps]))
        for tau in anchors:
            for probe in (int(tau) - 1, int(tau)):
                if self.earliest_arrival(probe % self.period) > other.earliest_arrival(
                    probe % self.period
                ):
                    return False
        return True

    def is_fifo(self) -> bool:
        """Reduced profiles are FIFO by construction; verify explicitly."""
        if self.arrs.size <= 1:
            return True
        return bool((np.diff(self.arrs) > 0).all())


def merge_profiles(profiles: Iterable[Profile]) -> Profile:
    """Pointwise minimum over any number of profiles."""
    result: Profile | None = None
    for profile in profiles:
        result = profile if result is None else result.minimum(profile)
    if result is None:
        raise ValueError("merge_profiles requires at least one profile")
    return result
