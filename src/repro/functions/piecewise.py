"""Edge travel-time functions (paper §2, Fig. 2).

Each time-dependent route edge carries the elementary connections of its
leg as a :class:`TravelTimeFunction`: parallel sorted arrays of
departure time points (in ``Π``) and durations.  Evaluating the function
at an absolute time ``t`` yields the earliest possible arrival
``t + f(t)`` over all connections, respecting periodicity.

Evaluation walks connection points cyclically from the first departure
not before ``t mod π`` and stops as soon as the waiting time alone can
no longer beat the best total found — this is correct even when a later
train overtakes an earlier one (non-FIFO legs), and costs O(1) amortized
on FIFO schedules.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Sequence

import numpy as np

from repro.timetable.periodic import DAY_MINUTES

#: Arrival label for "unreachable"; see :mod:`repro.timetable.periodic`.
INF_TIME = 2**62


class TravelTimeFunction:
    """A periodic piecewise-linear travel-time function.

    Parameters
    ----------
    deps:
        Departure time points, each in ``[0, period)``, non-decreasing.
    durs:
        Positive durations, parallel to ``deps``.
    period:
        Periodicity ``π``.
    """

    __slots__ = ("deps", "durs", "period", "_deps_arr", "_durs_arr", "_fifo_sorted")

    def __init__(
        self,
        deps: Sequence[int],
        durs: Sequence[int],
        period: int = DAY_MINUTES,
    ) -> None:
        if len(deps) != len(durs):
            raise ValueError(
                f"deps and durs must be parallel, got {len(deps)} vs {len(durs)}"
            )
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        deps = list(deps)
        durs = list(durs)
        for i, (tau, w) in enumerate(zip(deps, durs)):
            if not (0 <= tau < period):
                raise ValueError(f"departure {tau} outside [0, {period})")
            if w <= 0:
                raise ValueError(f"duration must be positive, got {w}")
            if i and tau < deps[i - 1]:
                raise ValueError("departures must be non-decreasing")
        self.deps = deps
        self.durs = durs
        self.period = period
        self._deps_arr: np.ndarray | None = None
        self._durs_arr: np.ndarray | None = None
        self._fifo_sorted: bool | None = None

    @classmethod
    def from_connections(
        cls, connections: Iterable, period: int = DAY_MINUTES
    ) -> "TravelTimeFunction":
        """Build from elementary connections of one route leg (paper §2):
        one connection point ``(τ_dep(c), Δ(τ_dep(c), τ_arr(c)))`` each.
        """
        pairs = sorted((c.dep_time, c.duration) for c in connections)
        return cls([p[0] for p in pairs], [p[1] for p in pairs], period)

    def __len__(self) -> int:
        return len(self.deps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TravelTimeFunction({len(self.deps)} points, period={self.period})"
        )

    def arrival(self, t: int) -> int:
        """Earliest absolute arrival when entering the edge at absolute
        time ``t``; ``INF_TIME`` if the function has no connection points.
        """
        deps = self.deps
        n = len(deps)
        if n == 0:
            return INF_TIME
        period = self.period
        durs = self.durs
        tau = t % period
        start = bisect_left(deps, tau)
        best = INF_TIME
        # First pass: departures at or after tau today.
        for k in range(start, n):
            wait = deps[k] - tau
            if wait >= best:
                break
            total = wait + durs[k]
            if total < best:
                best = total
        else:
            # Second pass: wrap to tomorrow's departures.
            for k in range(0, start):
                wait = period + deps[k] - tau
                if wait >= best:
                    break
                total = wait + durs[k]
                if total < best:
                    best = total
        return t + best if best < INF_TIME else INF_TIME

    def travel_time(self, t: int) -> int:
        """``f(t)``: waiting plus riding time when entering at ``t``."""
        arrival = self.arrival(t)
        return arrival - t if arrival < INF_TIME else INF_TIME

    def arrival_batch(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`arrival` for an int64 array of absolute times.

        Entries equal to ``INF_TIME`` (or larger) propagate unchanged.
        Used by the label-correcting baseline, which relaxes whole
        per-connection label vectors at once.

        For non-FIFO legs the vectorized form falls back to the scalar
        scan per element (rare; synthetic legs are FIFO).
        """
        n = len(self.deps)
        out = np.full(times.shape, INF_TIME, dtype=np.int64)
        if n == 0:
            return out
        finite = times < INF_TIME
        if not finite.any():
            return out
        if self._deps_arr is None:
            self._deps_arr = np.asarray(self.deps, dtype=np.int64)
            self._durs_arr = np.asarray(self.durs, dtype=np.int64)
        if not self._is_fifo_sorted():
            result = out.copy()
            finite_idx = np.nonzero(finite)[0]
            for i in finite_idx:
                result[i] = self.arrival(int(times[i]))
            return result
        t = times[finite]
        tau = t % self.period
        idx = np.searchsorted(self._deps_arr, tau, side="left")
        wrapped = idx == n
        idx_mod = np.where(wrapped, 0, idx)
        wait = self._deps_arr[idx_mod] - tau + np.where(wrapped, self.period, 0)
        out[finite] = t + wait + self._durs_arr[idx_mod]
        return out

    def _is_fifo_sorted(self) -> bool:
        """True iff taking the next departure is always optimal, i.e.
        arrivals ``dep + dur`` are non-decreasing and the last wrapped
        arrival does not overtake the first.  Cached after first call."""
        if self._fifo_sorted is not None:
            return self._fifo_sorted
        self._fifo_sorted = self._compute_fifo_sorted()
        return self._fifo_sorted

    def _compute_fifo_sorted(self) -> bool:
        deps, durs = self.deps, self.durs
        arrs = [d + w for d, w in zip(deps, durs)]
        for earlier, later in zip(arrs, arrs[1:]):
            if later < earlier:
                return False
        # Wrap check: tomorrow's first departure vs today's last arrival.
        if arrs and arrs[-1] > deps[0] + self.period + durs[0]:
            return False
        return True

    def is_fifo(self) -> bool:
        """Check the FIFO property of the *schedule* (paper §2): no
        connection overtakes an earlier one on this leg, i.e. arrivals
        are non-decreasing in departure order (cyclically).

        Note the evaluated lower envelope always satisfies the
        functional inequality ``f(τ1) ≤ Δ(τ1, τ2) + f(τ2)`` — one can
        always wait — so the meaningful FIFO check is on the connection
        points, not on evaluations.
        """
        return self._is_fifo_sorted()

    def min_duration(self) -> int:
        """Lower bound on the travel time over all departures.

        Used as the scalar weight of station-graph edges during
        contraction-based transfer-station selection.
        """
        return min(self.durs) if self.durs else INF_TIME

    def connection_points(self) -> list[tuple[int, int]]:
        """The connection-point set ``P(f)`` as (τ, w) pairs."""
        return list(zip(self.deps, self.durs))
