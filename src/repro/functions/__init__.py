"""Piecewise-linear travel-time functions (paper §2) and profile algebra.

Travel-time functions in public transportation networks are piecewise
linear of a special form: each is represented by a set of
*connection points* ``(τ_f, w_f)`` with

    f(τ) = Δ(τ, τ_f) + w_f   for the point minimizing Δ(τ, τ_f).

This package provides the edge travel-time functions, profile functions
(``dist(S, T, ·)``), the connection-reduction dominance scan of §3.1,
and the pointwise algebra the label-correcting baseline uses.
"""

from repro.functions.piecewise import INF_TIME, TravelTimeFunction
from repro.functions.reduction import (
    reduce_connection_points,
    reduction_mask,
)
from repro.functions.algebra import Profile

__all__ = [
    "INF_TIME",
    "TravelTimeFunction",
    "reduce_connection_points",
    "reduction_mask",
    "Profile",
]
