"""Command-line interface (``repro-transit``).

Subcommands::

    generate   emit a named synthetic instance as a GTFS-like feed
    info       summarize a timetable (stations, connections, density)
    profile    one-to-all profile query from a station
    query      station-to-station profile query
    batch      run a batched random query workload (throughput check)
    table1     regenerate Table 1 rows for an instance
    table2     regenerate Table 2 rows for an instance

``profile``, ``query`` and ``batch`` accept ``--kernel {python,flat}``:
``python`` is the reference object-graph SPCS, ``flat`` the packed
flat-array kernel (identical results, several times faster).  All
three run on top of the :class:`~repro.service.TransitService` facade:
the CLI builds one service per invocation (prepare once) and issues
typed requests against it.  ``batch --json`` emits a one-line JSON
throughput summary for scriptable perf tracking.

Timetables are read either from a GTFS-like directory (``--gtfs DIR``)
or generated on the fly (``--instance NAME [--scale SCALE]``).
"""

from __future__ import annotations

import argparse
import json
import math
import sys

from repro.analysis import render_table1, render_table2, run_table1, run_table2
from repro.core import KERNELS
from repro.graph import build_td_graph
from repro.query import BATCH_BACKENDS
from repro.service import BatchRequest, ServiceConfig, TransitService
from repro.synthetic.workloads import random_station_pairs
from repro.synthetic import INSTANCE_NAMES, make_instance
from repro.timetable.gtfs import load_gtfs, save_gtfs
from repro.timetable.periodic import format_time
from repro.timetable.types import Timetable


def _add_input_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--instance", choices=INSTANCE_NAMES, help="synthetic instance name"
    )
    group.add_argument("--gtfs", help="GTFS-like feed directory")
    parser.add_argument(
        "--scale",
        default="small",
        choices=("tiny", "small", "medium"),
        help="synthetic instance scale (default: small)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for synthetic-instance generation (and, for batch, "
        "the random query workload)",
    )


def _load(args: argparse.Namespace) -> Timetable:
    if args.gtfs:
        return load_gtfs(args.gtfs)
    return make_instance(args.instance, args.scale, args.seed)


def _cmd_generate(args: argparse.Namespace) -> int:
    timetable = make_instance(args.instance, args.scale, args.seed)
    save_gtfs(timetable, args.output)
    print(f"wrote {timetable.summary()} to {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    timetable = _load(args)
    graph = build_td_graph(timetable)
    print(timetable.summary())
    print(
        f"time-dependent graph: {graph.num_nodes} nodes "
        f"({graph.num_stations} station, {graph.num_route_nodes} route), "
        f"{graph.num_edges} edges, {len(graph.routes)} routes"
    )
    return 0


def _make_service(
    args: argparse.Namespace,
    timetable: Timetable,
    *,
    quiet: bool = False,
    **overrides,
) -> TransitService:
    """One prepared service per CLI invocation (the facade owns the
    graph build, packing and the optional distance table).

    ``quiet`` suppresses the human-readable distance-table line —
    required by ``batch --json``, whose stdout must be exactly one
    JSON document.
    """
    fraction = getattr(args, "transfer_fraction", 0.0)
    config = ServiceConfig(
        kernel=args.kernel,
        num_threads=args.cores,
        use_distance_table=fraction > 0,
        transfer_fraction=fraction if fraction > 0 else 0.05,
        **overrides,
    )
    service = TransitService(timetable, config)
    table = service.table
    if table is not None and not quiet:
        print(
            f"distance table over {table.num_transfer_stations} transfer "
            f"stations ({table.size_mib():.2f} MiB, "
            f"built in {table.build_seconds:.1f} s)"
        )
    return service


def _cmd_profile(args: argparse.Namespace) -> int:
    timetable = _load(args)
    service = _make_service(args, timetable)
    result = service.profile(args.source)
    stats = result.stats
    print(
        f"one-to-all from station {args.source} on {args.cores} cores: "
        f"{stats.settled_connections} settled connections, "
        f"simulated time {stats.simulated_seconds * 1000:.1f} ms"
    )
    targets = (
        range(timetable.num_stations) if args.target is None else [args.target]
    )
    for target in targets:
        if target == args.source:
            continue
        profile = result.profile(target)
        points = ", ".join(
            f"{format_time(dep)}→{format_time(dep + dur)}"
            for dep, dur in profile.connection_points()[: args.max_points]
        )
        suffix = " ..." if len(profile) > args.max_points else ""
        print(f"  to {target:4d} ({len(profile):3d} points): {points}{suffix}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    timetable = _load(args)
    service = _make_service(args, timetable)
    result = service.journey(args.source, args.target)
    stats = result.stats
    print(
        f"{args.source} → {args.target} ({stats.classification}): "
        f"{stats.settled_connections} settled connections, "
        f"simulated time {stats.simulated_seconds * 1000:.1f} ms"
    )
    if result.profile.is_empty():
        print("  no connections found (target unreachable)")
    for dep, dur in result.profile.connection_points():
        print(f"  depart {format_time(dep)}  arrive {format_time(dep + dur)}  ({dur} min)")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    timetable = _load(args)
    service = _make_service(
        args,
        timetable,
        quiet=args.json,
        backend=args.backend,
        workers=args.workers,
    )
    pairs = random_station_pairs(timetable, args.n_queries, seed=args.seed)
    batch = service.batch(BatchRequest.from_pairs(pairs))
    stats = batch.stats
    settled = sum(r.stats.settled_connections for r in batch.journeys)
    if args.json:
        classifications: dict[str, int] = {}
        for r in batch.journeys:
            key = r.stats.classification or "unknown"
            classifications[key] = classifications.get(key, 0) + 1
        # queries_per_second is inf for an instantaneous (e.g. empty)
        # batch; json.dumps would emit the non-RFC-8259 token Infinity.
        qps = stats.queries_per_second
        summary = {
            "num_queries": stats.num_queries,
            "kernel": stats.kernel,
            "backend": stats.backend,
            "workers": stats.num_workers,
            "seed": args.seed,
            "total_seconds": round(stats.total_seconds, 6),
            "queries_per_second": round(qps, 2) if math.isfinite(qps) else 0.0,
            "setup_seconds": round(stats.setup_seconds, 6),
            "prepare_seconds": round(
                service.prepare_stats.total_seconds, 6
            ),
            "transfer_stations": service.prepare_stats.num_transfer_stations,
            "table_mib": round(service.prepare_stats.table_mib, 4),
            "settled_connections": settled,
            "mean_simulated_seconds": round(
                sum(r.stats.simulated_seconds for r in batch.journeys)
                / max(len(batch.journeys), 1),
                6,
            ),
            "classifications": classifications,
        }
        print(json.dumps(summary, sort_keys=True))
        return 0
    print(
        f"{stats.num_queries} queries on kernel={stats.kernel} "
        f"backend={stats.backend} workers={stats.num_workers}: "
        f"{stats.total_seconds * 1000:.1f} ms total "
        f"({stats.queries_per_second:.1f} queries/s, "
        f"setup {stats.setup_seconds * 1000:.1f} ms, "
        f"{settled} settled connections)"
    )
    for (s, t), result in zip(pairs, batch.journeys):
        best = (
            "unreachable"
            if result.profile.is_empty()
            else f"{len(result.profile)} profile points"
        )
        print(f"  {s:4d} → {t:4d} ({result.stats.classification}): {best}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    result = run_table1(
        args.instance,
        scale=args.scale,
        num_queries=args.queries,
        seed=args.seed,
    )
    print(render_table1([result]))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    rows = run_table2(
        args.instance,
        scale=args.scale,
        num_queries=args.queries,
        seed=args.seed,
    )
    print(render_table2(rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-transit",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="emit a synthetic GTFS-like feed")
    p_gen.add_argument("--instance", choices=INSTANCE_NAMES, required=True)
    p_gen.add_argument("--scale", default="small", choices=("tiny", "small", "medium"))
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--output", required=True, help="output directory")
    p_gen.set_defaults(func=_cmd_generate)

    p_info = sub.add_parser("info", help="summarize a timetable")
    _add_input_arguments(p_info)
    p_info.set_defaults(func=_cmd_info)

    p_profile = sub.add_parser("profile", help="one-to-all profile query")
    _add_input_arguments(p_profile)
    p_profile.add_argument("--source", type=int, required=True)
    p_profile.add_argument("--target", type=int, default=None)
    p_profile.add_argument("--cores", type=int, default=4)
    p_profile.add_argument("--max-points", type=int, default=6)
    p_profile.add_argument("--kernel", choices=KERNELS, default="flat")
    p_profile.set_defaults(func=_cmd_profile)

    p_query = sub.add_parser("query", help="station-to-station query")
    _add_input_arguments(p_query)
    p_query.add_argument("--source", type=int, required=True)
    p_query.add_argument("--target", type=int, required=True)
    p_query.add_argument("--cores", type=int, default=4)
    p_query.add_argument(
        "--transfer-fraction",
        type=float,
        default=0.0,
        help="fraction of stations to use as transfer stations (0 = no table)",
    )
    p_query.add_argument("--kernel", choices=KERNELS, default="flat")
    p_query.set_defaults(func=_cmd_query)

    p_batch = sub.add_parser(
        "batch", help="batched random query workload (throughput check)"
    )
    _add_input_arguments(p_batch)
    p_batch.add_argument(
        "--n-queries", type=int, default=20, help="random (source, target) pairs"
    )
    p_batch.add_argument("--cores", type=int, default=1)
    p_batch.add_argument(
        "--workers", type=int, default=4, help="pool workers distributing queries"
    )
    p_batch.add_argument("--backend", choices=BATCH_BACKENDS, default="serial")
    p_batch.add_argument("--kernel", choices=KERNELS, default="flat")
    p_batch.add_argument(
        "--transfer-fraction",
        type=float,
        default=0.0,
        help="fraction of stations to use as transfer stations (0 = no table)",
    )
    p_batch.add_argument(
        "--json",
        action="store_true",
        help="print a one-line JSON throughput summary instead of text",
    )
    p_batch.set_defaults(func=_cmd_batch)

    for name, fn in (("table1", _cmd_table1), ("table2", _cmd_table2)):
        p_tab = sub.add_parser(name, help=f"regenerate {name} for an instance")
        p_tab.add_argument("--instance", choices=INSTANCE_NAMES, required=True)
        p_tab.add_argument(
            "--scale", default="small", choices=("tiny", "small", "medium")
        )
        p_tab.add_argument("--queries", type=int, default=5)
        p_tab.add_argument("--seed", type=int, default=0)
        p_tab.set_defaults(func=fn)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
