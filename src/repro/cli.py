"""Command-line interface (``repro-transit``).

Subcommands::

    generate   emit a named synthetic instance as a GTFS-like feed
    info       summarize a timetable (or a store manifest, without
               hydrating: ``info --from-store DIR``)
    prepare    build every prepared artifact and persist it to a store
    profile    one-to-all profile query from a station
    query      station-to-station profile query
    batch      run a batched random query workload (throughput check)
    multicriteria  Pareto front of (transfers, arrival) trade-offs
               for one station pair at a departure time
    via        earliest arrival through a required via station
    min-transfers  fewest-transfers journey within a transfer budget
    serve      async multi-dataset HTTP query server over stores
    serve-fleet  sharded multi-process serve fleet behind a routing
               gateway (N worker processes, one address; docs/FLEET.md)
    delay-stream  generate a seeded GTFS-RT-style delay stream for the
               replay harness (docs/STREAMS.md)
    replay     replay a delay stream against a live serve/serve-fleet
               target with interleaved closed-loop query traffic
    table1     regenerate Table 1 rows for an instance
    table2     regenerate Table 2 rows for an instance
    bench      benchmark ops: index pending result records into the
               repo-root ``BENCH_*.json`` trajectories and gate new
               runs against the last known-good entry

``profile``, ``query`` and ``batch`` accept ``--kernel {python,flat}``:
``python`` is the reference object-graph SPCS, ``flat`` the packed
flat-array kernel (identical results, several times faster).  All
query commands — those three plus ``multicriteria``, ``via`` and
``min-transfers`` — run against a :class:`~repro.client.TransitBackend`: an
in-process :class:`~repro.client.LocalBackend` by default, or — with
``--remote http://host:port[/dataset]`` — an
:class:`~repro.client.HttpBackend` against a running ``repro-transit
serve`` fleet, with byte-identical output either way (the client SDK's
parity guarantee, ``docs/CLIENT.md``).  ``batch --json`` emits a
one-line JSON throughput summary for scriptable perf tracking.

Timetables are read from a GTFS-like directory (``--gtfs DIR``),
generated on the fly (``--instance NAME [--scale SCALE]``), or — for
the query commands — warm-started from an artifact store written by
``prepare --store DIR`` (``--from-store DIR``).  A warm start skips
every build (graph, packing, station graph, distance table) and runs
under the configuration the store was prepared with; the
preparation-shaping ``--kernel`` and ``--transfer-fraction`` are
therefore rejected next to ``--from-store`` (re-run ``prepare`` to
change them), while the runtime-only ``--cores`` / ``--backend`` /
``--workers`` still apply when given explicitly.  ``--remote`` is
stricter for the same reason: the *server's* preparation and execution
configuration governs, so every dataset- or execution-shaping flag is
rejected next to it (``--cores`` stays legal for ``profile``, where it
is a per-request field of the wire protocol).

Long-running commands handle SIGINT/SIGTERM gracefully: ``serve``
stops accepting, drains in-flight requests and exits 0; an
interrupted ``prepare --store`` aborts cleanly and never leaves a
partial manifest (the store simply refuses to load until re-prepared).
"""

from __future__ import annotations

import argparse
import json
import math
import signal
import sys
import threading
from contextlib import contextmanager

from repro.analysis import render_table1, render_table2, run_table1, run_table2
from repro.client import BackendError, LocalBackend, TransitBackend, connect
from repro.core import KERNELS
from repro.graph import build_td_graph
from repro.query import BATCH_BACKENDS
from repro.service import (
    BatchRequest,
    ProfileRequest,
    ServiceConfig,
    TransitService,
)
from repro.store import StoreError, describe_store
from repro.synthetic.workloads import random_station_pairs
from repro.synthetic import INSTANCE_NAMES, STREAM_SHAPES, make_instance
from repro.timetable.gtfs import load_gtfs, save_gtfs
from repro.timetable.periodic import format_time
from repro.timetable.types import Timetable


def _add_input_arguments(
    parser: argparse.ArgumentParser,
    *,
    allow_store: bool = False,
    allow_remote: bool = False,
) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--instance", choices=INSTANCE_NAMES, help="synthetic instance name"
    )
    group.add_argument("--gtfs", help="GTFS-like feed directory")
    if allow_store:
        group.add_argument(
            "--from-store",
            metavar="DIR",
            help="warm-start from an artifact store written by "
            "`prepare --store` (skips every build; the stored config "
            "governs, see module help)",
        )
    if allow_remote:
        group.add_argument(
            "--remote",
            metavar="URL",
            help="query a running `repro-transit serve` instance at "
            "http://host:port[/dataset] instead of preparing locally "
            "(the server's configuration governs, see module help)",
        )
    # Store-capable commands default the instance-shaping flags to
    # None so an explicit value next to --from-store can be rejected
    # instead of silently ignored; _load resolves the defaults.
    parser.add_argument(
        "--scale",
        default=None if allow_store else "small",
        choices=("tiny", "small", "medium"),
        help="synthetic instance scale (default: small; not valid "
        "with --from-store)" if allow_store
        else "synthetic instance scale (default: small)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None if allow_store else 0,
        help="seed for synthetic-instance generation (and, for batch, "
        "the random query workload; default: 0)",
    )


def _load(args: argparse.Namespace) -> Timetable:
    if args.gtfs:
        return load_gtfs(args.gtfs)
    scale = args.scale if args.scale is not None else "small"
    seed = args.seed if args.seed is not None else 0
    return make_instance(args.instance, scale, seed)


class _Interrupted(Exception):
    """SIGINT/SIGTERM arrived inside a :func:`_graceful_signals` block."""

    def __init__(self, signum: int) -> None:
        super().__init__(signal.Signals(signum).name)
        self.signum = signum


@contextmanager
def _graceful_signals():
    """Convert SIGINT/SIGTERM into :class:`_Interrupted` so commands
    unwind through ``finally`` blocks (no half-written state) instead
    of dying at an arbitrary bytecode.

    A no-op off the main thread (signal handlers can only be installed
    there — e.g. pytest-run commands stay untouched elsewhere).
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _handler(signum, frame):
        raise _Interrupted(signum)

    previous = {
        sig: signal.signal(sig, _handler)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        yield
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)


def _cmd_generate(args: argparse.Namespace) -> int:
    timetable = make_instance(args.instance, args.scale, args.seed)
    save_gtfs(timetable, args.output)
    print(f"wrote {timetable.summary()} to {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    store = getattr(args, "from_store", None)
    if store:
        return _info_from_store(args, store)
    timetable = _load(args)
    graph = build_td_graph(timetable)
    print(timetable.summary())
    print(
        f"time-dependent graph: {graph.num_nodes} nodes "
        f"({graph.num_stations} station, {graph.num_route_nodes} route), "
        f"{graph.num_edges} edges, {len(graph.routes)} routes"
    )
    return 0


def _info_from_store(args: argparse.Namespace, store: str) -> int:
    """Describe a store from its manifest alone — no packed buffer is
    opened, no artifact hydrated, so this is instant on any size."""
    for flag, value in (("--scale", args.scale), ("--seed", args.seed)):
        if value is not None:
            raise SystemExit(
                f"error: {flag} cannot be combined with --from-store "
                f"(the manifest describes what was prepared)"
            )
    try:
        info = describe_store(store)
    except StoreError as exc:
        raise SystemExit(f"error: {exc}") from None
    counts = info["counts"]
    config = info["config"]
    sizes = info["sizes_bytes"]
    print(
        f"artifact store {store} "
        f"(format v{info['format_version']}, "
        f"config {info['config_hash'][:12]}…)"
    )
    print(
        f"  timetable {info['timetable_name']}: "
        f"{counts['stations']} stations, {counts['trains']} trains, "
        f"{counts['connections']} connections"
    )
    print(
        f"  graph: {counts['nodes']} nodes, {counts['edges']} edges, "
        f"{counts['routes']} routes"
    )
    table_note = (
        f"distance table over {counts['transfer_stations']} "
        f"transfer stations"
        if info["artifacts"]["table"]
        else "no distance table"
    )
    print(f"  artifacts: {table_note}")
    print(
        f"  config: kernel={config['kernel']} "
        f"num_threads={config['num_threads']} "
        f"backend={config['backend']} workers={config['workers']} "
        f"use_distance_table={config['use_distance_table']} "
        f"transfer_fraction={config['transfer_fraction']}"
    )
    detail = ", ".join(
        f"{name} {size / 1024:.1f} KiB" for name, size in sorted(sizes.items())
    )
    print(f"  on disk: {info['total_bytes'] / 1024:.1f} KiB ({detail})")
    print(f"  warm-start with: --from-store {store}")
    return 0


def _make_service(
    args: argparse.Namespace,
    timetable: Timetable,
    *,
    quiet: bool = False,
    cores: int = 4,
    **overrides,
) -> TransitService:
    """One prepared service per CLI invocation (the facade owns the
    graph build, packing and the optional distance table).

    ``quiet`` suppresses the human-readable distance-table line —
    required by ``batch --json``, whose stdout must be exactly one
    JSON document.
    """
    fraction = getattr(args, "transfer_fraction", None) or 0.0
    kernel = getattr(args, "kernel", None) or "flat"
    config = ServiceConfig(
        kernel=kernel,
        num_threads=cores,
        use_distance_table=fraction > 0,
        transfer_fraction=fraction if fraction > 0 else 0.05,
        **overrides,
    )
    service = TransitService(timetable, config)
    table = service.table
    if table is not None and not quiet:
        print(
            f"distance table over {table.num_transfer_stations} transfer "
            f"stations ({table.size_mib():.2f} MiB, "
            f"built in {table.build_seconds:.1f} s)"
        )
    return service


def _service_from_args(
    args: argparse.Namespace,
    *,
    quiet: bool = False,
    default_cores: int = 4,
    backend: str | None = None,
    workers: int | None = None,
    seed_is_runtime: bool = False,
) -> TransitService:
    """The query commands' service: warm from ``--from-store`` when
    given, otherwise a fresh prepare.

    A warm start runs under the stored config; only the runtime-only
    flags the user passed explicitly (``--cores``, ``--backend``,
    ``--workers`` default to ``None`` on store-capable commands)
    override it.  Flags that shape the prepared dataset (``--kernel``,
    ``--transfer-fraction``, ``--scale``, and ``--seed`` except where
    it seeds the query workload, ``seed_is_runtime``) are rejected
    next to ``--from-store`` — silently ignoring them would misreport
    what was measured.  A fresh prepare resolves every flag to the
    documented defaults.
    """
    store = getattr(args, "from_store", None)
    cores = getattr(args, "cores", None)
    if store:
        rejected = [
            ("--kernel", getattr(args, "kernel", None)),
            ("--transfer-fraction", getattr(args, "transfer_fraction", None)),
            ("--scale", getattr(args, "scale", None)),
        ]
        if not seed_is_runtime:
            rejected.append(("--seed", getattr(args, "seed", None)))
        for flag, value in rejected:
            if value is not None:
                raise SystemExit(
                    f"error: {flag} cannot be combined with --from-store "
                    f"(it shapes the prepared dataset; the store governs — "
                    f"re-run `prepare` to change it)"
                )
        try:
            service = TransitService.load(store)
        except StoreError as exc:
            raise SystemExit(f"error: {exc}") from None
        runtime = {
            key: value
            for key, value in (
                ("num_threads", cores),
                ("backend", backend),
                ("workers", workers),
            )
            if value is not None
        }
        if runtime:
            service = service.with_runtime_overrides(**runtime)
        if not quiet:
            stats = service.prepare_stats
            print(
                f"warm start from {store}: {stats.num_stations} stations, "
                f"{stats.num_connections} connections loaded in "
                f"{stats.total_seconds * 1000:.1f} ms (no builds)"
            )
        return service
    timetable = _load(args)
    return _make_service(
        args,
        timetable,
        quiet=quiet,
        cores=cores if cores is not None else default_cores,
        **{
            key: value
            for key, value in (("backend", backend), ("workers", workers))
            if value is not None
        },
    )


def _backend_from_args(
    args: argparse.Namespace,
    *,
    quiet: bool = False,
    default_cores: int = 4,
    backend: str | None = None,
    workers: int | None = None,
    seed_is_runtime: bool = False,
    remote_allows_cores: bool = False,
) -> TransitBackend:
    """The query commands' :class:`TransitBackend`: an
    :class:`HttpBackend` for ``--remote``, else a
    :class:`LocalBackend` over :func:`_service_from_args`.

    ``--remote`` runs under the *server's* preparation and execution
    configuration, so — mirroring the ``--from-store`` rule — every
    flag that shapes the dataset or its execution is rejected instead
    of silently ignored.  ``--cores`` survives only where the wire
    protocol carries it per request (``profile``,
    ``remote_allows_cores``).
    """
    remote = getattr(args, "remote", None)
    if not remote:
        service = _service_from_args(
            args,
            quiet=quiet,
            default_cores=default_cores,
            backend=backend,
            workers=workers,
            seed_is_runtime=seed_is_runtime,
        )
        store = getattr(args, "from_store", None)
        name = args.instance or (store and str(store)) or args.gtfs
        return LocalBackend(service, name=name)
    rejected = [
        ("--kernel", getattr(args, "kernel", None)),
        ("--transfer-fraction", getattr(args, "transfer_fraction", None)),
        ("--scale", getattr(args, "scale", None)),
        ("--backend", backend),
        ("--workers", workers),
    ]
    if not seed_is_runtime:
        rejected.append(("--seed", getattr(args, "seed", None)))
    if not remote_allows_cores:
        rejected.append(("--cores", getattr(args, "cores", None)))
    for flag, value in rejected:
        if value is not None:
            raise SystemExit(
                f"error: {flag} cannot be combined with --remote "
                f"(the server's configuration governs; set it on "
                f"`repro-transit serve` instead)"
            )
    try:
        return connect(remote)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None


def _cmd_profile(args: argparse.Namespace) -> int:
    backend = _backend_from_args(args, remote_allows_cores=True)
    request = ProfileRequest(args.source, num_threads=args.cores)
    # --target trims what travels (and what prints): the search is
    # one-to-all regardless, exactly like the wire protocol's targets.
    targets = None if args.target is None else [args.target]
    result = backend.profile(request, targets=targets)
    stats = result.stats
    print(
        f"one-to-all from station {args.source} on {stats.num_threads} "
        f"cores: {stats.settled_connections} settled connections, "
        f"simulated time {stats.simulated_seconds * 1000:.1f} ms"
    )
    for target, profile in result.profiles.items():
        if target == args.source:
            continue
        points = ", ".join(
            f"{format_time(dep)}→{format_time(dep + dur)}"
            for dep, dur in profile.connection_points()[: args.max_points]
        )
        suffix = " ..." if len(profile) > args.max_points else ""
        print(f"  to {target:4d} ({len(profile):3d} points): {points}{suffix}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    backend = _backend_from_args(args)
    result = backend.journey(args.source, args.target)
    stats = result.stats
    print(
        f"{args.source} → {args.target} ({stats.classification}): "
        f"{stats.settled_connections} settled connections, "
        f"simulated time {stats.simulated_seconds * 1000:.1f} ms"
    )
    if result.profile.is_empty():
        print("  no connections found (target unreachable)")
    for dep, dur in result.profile.connection_points():
        print(f"  depart {format_time(dep)}  arrive {format_time(dep + dur)}  ({dur} min)")
    return 0


def _print_legs(legs, indent: str = "  ") -> None:
    for leg in legs:
        print(
            f"{indent}{leg.from_station:4d} → {leg.to_station:4d}  "
            f"depart {format_time(leg.departure)}  "
            f"arrive {format_time(leg.arrival)}"
        )


def _cmd_multicriteria(args: argparse.Namespace) -> int:
    backend = _backend_from_args(args)
    result = backend.multicriteria(
        args.source,
        args.target,
        departure=args.departure,
        max_transfers=args.max_transfers,
    )
    stats = result.stats
    print(
        f"{args.source} → {args.target} departing "
        f"{format_time(args.departure)} (≤{args.max_transfers} transfers): "
        f"{len(result.options)} Pareto option(s), "
        f"{stats.settled_connections} settled connections"
    )
    if not result.reachable:
        print("  unreachable within the transfer budget")
        return 0
    for option in result.options:
        print(
            f"  {option.transfers} transfer(s): "
            f"arrive {format_time(option.arrival)}"
        )
    if result.legs:
        print("  fastest itinerary:")
        _print_legs(result.legs, indent="    ")
    return 0


def _cmd_via(args: argparse.Namespace) -> int:
    backend = _backend_from_args(args)
    result = backend.via(
        args.source, args.via, args.target, departure=args.departure
    )
    stats = result.stats
    print(
        f"{args.source} → {args.via} → {args.target} departing "
        f"{format_time(args.departure)}: "
        f"{stats.settled_connections} settled connections"
    )
    if not result.reachable:
        print("  unreachable through the via station")
        return 0
    print(
        f"  at via {format_time(result.via_arrival)}, "
        f"arrive {format_time(result.arrival)}"
    )
    if result.legs:
        _print_legs(result.legs)
    return 0


def _cmd_min_transfers(args: argparse.Namespace) -> int:
    backend = _backend_from_args(args)
    result = backend.min_transfers(
        args.source,
        args.target,
        departure=args.departure,
        max_transfers=args.max_transfers,
    )
    stats = result.stats
    print(
        f"{args.source} → {args.target} departing "
        f"{format_time(args.departure)} (≤{args.max_transfers} transfers): "
        f"{stats.settled_connections} settled connections"
    )
    if not result.reachable:
        print("  unreachable within the transfer budget")
        return 0
    print(
        f"  {result.transfers} transfer(s), "
        f"arrive {format_time(result.arrival)}"
    )
    if result.legs:
        _print_legs(result.legs)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    # --seed also seeds the random query workload here, so it stays
    # legal (and meaningful) next to --from-store and --remote.
    seed = args.seed if args.seed is not None else 0
    args.seed = seed
    backend = _backend_from_args(
        args,
        quiet=args.json,
        default_cores=1,
        backend=args.backend,
        workers=args.workers,
        seed_is_runtime=True,
    )
    # Same seed + same station count ⇒ same workload on every
    # transport (info() is free locally, one GET remotely).
    pairs = random_station_pairs(
        backend.info().stations, args.n_queries, seed=seed
    )
    batch = backend.batch(BatchRequest.from_pairs(pairs))
    stats = batch.stats
    settled = sum(r.stats.settled_connections for r in batch.journeys)
    if args.json:
        classifications: dict[str, int] = {}
        for r in batch.journeys:
            key = r.stats.classification or "unknown"
            classifications[key] = classifications.get(key, 0) + 1
        # queries_per_second is inf for an instantaneous (e.g. empty)
        # batch; json.dumps would emit the non-RFC-8259 token Infinity.
        qps = stats.queries_per_second
        # Preparation accounting exists only where preparation ran:
        # a remote backend reports the serving side's dataset, whose
        # prepare cost was paid by the server.
        prepare = (
            backend.service.prepare_stats
            if isinstance(backend, LocalBackend)
            else None
        )
        summary = {
            "num_queries": stats.num_queries,
            "kernel": stats.kernel,
            "backend": stats.backend,
            "workers": stats.num_workers,
            "seed": args.seed,
            "transport": "local" if prepare is not None else "http",
            "total_seconds": round(stats.total_seconds, 6),
            "queries_per_second": round(qps, 2) if math.isfinite(qps) else 0.0,
            "setup_seconds": round(stats.setup_seconds, 6),
            "prepare_seconds": (
                None if prepare is None else round(prepare.total_seconds, 6)
            ),
            "transfer_stations": (
                None if prepare is None else prepare.num_transfer_stations
            ),
            "table_mib": (
                None if prepare is None else round(prepare.table_mib, 4)
            ),
            "settled_connections": settled,
            "mean_simulated_seconds": round(
                sum(r.stats.simulated_seconds for r in batch.journeys)
                / max(len(batch.journeys), 1),
                6,
            ),
            "classifications": classifications,
        }
        print(json.dumps(summary, sort_keys=True))
        return 0
    print(
        f"{stats.num_queries} queries on kernel={stats.kernel} "
        f"backend={stats.backend} workers={stats.num_workers}: "
        f"{stats.total_seconds * 1000:.1f} ms total "
        f"({stats.queries_per_second:.1f} queries/s, "
        f"setup {stats.setup_seconds * 1000:.1f} ms, "
        f"{settled} settled connections)"
    )
    for (s, t), result in zip(pairs, batch.journeys):
        best = (
            "unreachable"
            if result.profile.is_empty()
            else f"{len(result.profile)} profile points"
        )
        print(f"  {s:4d} → {t:4d} ({result.stats.classification}): {best}")
    return 0


def _cmd_prepare(args: argparse.Namespace) -> int:
    try:
        with _graceful_signals():
            timetable = _load(args)
            service = _make_service(args, timetable, cores=args.cores)
            service.save(args.store)
    except _Interrupted as exc:
        # save_dataset unlinks the old manifest first and renames the
        # new one into place last, so however far the save got, the
        # store either loads a complete generation or refuses to load.
        print(
            f"interrupted ({exc}); no manifest written — "
            f"{args.store} will refuse to load until prepare is re-run",
            file=sys.stderr,
        )
        return 130
    info = describe_store(args.store)
    stats = service.prepare_stats
    print(
        f"prepared {timetable.summary()}\n"
        f"  graph {stats.graph_seconds * 1000:.1f} ms, "
        f"pack {stats.pack_seconds * 1000:.1f} ms, "
        f"station graph {stats.station_graph_seconds * 1000:.1f} ms, "
        f"table {stats.table_seconds * 1000:.1f} ms "
        f"(total {stats.total_seconds * 1000:.1f} ms)\n"
        f"store written to {args.store}: "
        f"{info['total_bytes'] / 1024:.1f} KiB "
        f"(format v{info['format_version']}, "
        f"config {info['config_hash'][:12]}…)\n"
        f"warm-start with: --from-store {args.store}"
    )
    return 0


def _write_port_file(path: str, port: int) -> None:
    """Publish the bound port atomically: a reader either finds no
    file yet or a complete, valid port — never a partial write.  This
    is what lets the fleet supervisor discover ``--port 0`` ephemeral
    ports without parsing logs (and without port-collision races:
    the kernel picked a free port at bind time)."""
    import os
    import tempfile

    target = os.path.abspath(path)
    fd, tmp = tempfile.mkstemp(
        dir=os.path.dirname(target), prefix=".port-"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(f"{port}\n")
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _cmd_serve(args: argparse.Namespace) -> int:
    """Long-lived multi-dataset HTTP server over artifact stores.

    Warm-loads every ``--store`` (the directory basename names the
    dataset), then serves until SIGINT/SIGTERM, which triggers a
    graceful drain (stop accepting, finish in-flight requests, flush
    micro-batch windows) and a clean exit 0.
    """
    # Imported here: the server pulls in asyncio machinery that no
    # other subcommand needs.
    import asyncio

    from repro.server import DatasetRegistry, TransitServer

    try:
        registry = DatasetRegistry.from_stores(args.store)
    except (StoreError, ValueError) as exc:
        raise SystemExit(f"error: {exc}") from None

    async def _run() -> None:
        server = TransitServer(
            registry,
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_inflight=args.max_inflight,
            batch_window=args.batch_window_ms / 1000.0,
            batch_max=args.batch_max,
            drain_grace=args.drain_grace_ms / 1000.0,
        )
        await server.start()
        if args.port_file:
            _write_port_file(args.port_file, server.port)
        for entry in registry.entries():
            stats = entry.service.prepare_stats
            print(
                f"  dataset {entry.name}: {stats.num_stations} stations, "
                f"{stats.num_connections} connections "
                f"(warm-loaded from {entry.source})"
            )
        print(
            f"listening on http://{server.host}:{server.port} "
            f"(workers={args.workers}, max_inflight={args.max_inflight}, "
            f"batch_window={args.batch_window_ms:g} ms)",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        await stop.wait()
        print("signal received — draining in-flight requests", flush=True)
        await server.shutdown()
        snapshot = server.metrics.snapshot()
        total = sum(snapshot["requests_total"].values())
        print(f"drained; served {total} request(s)", flush=True)

    asyncio.run(_run())
    return 0


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    """N worker processes over the same stores, one routing gateway.

    The supervisor spawns the workers (ephemeral ports, port-file
    discovery, crash restarts with capped backoff); the gateway
    health-checks and load-balances them, fails queries over on
    worker death, and coordinates fleet-wide delay swaps.  SIGINT/
    SIGTERM drains the gateway, then stops the workers; exit 0.
    """
    import asyncio

    from repro.fleet import FleetGateway, WorkerSupervisor

    supervisor = WorkerSupervisor(
        args.store,
        args.workers,
        host=args.host,
        runtime_dir=args.runtime_dir,
        worker_threads=args.worker_threads,
        max_inflight=args.worker_max_inflight,
        batch_window_ms=args.batch_window_ms,
        batch_max=args.batch_max,
        drain_grace=args.worker_drain_grace_ms / 1000.0,
    )
    print(
        f"spawning {args.workers} worker(s) over "
        f"{len(args.store)} store(s)...",
        flush=True,
    )
    try:
        supervisor.start()
    except RuntimeError as exc:
        raise SystemExit(f"error: {exc}") from None

    async def _run() -> None:
        gateway = FleetGateway(
            supervisor.endpoints,
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            health_interval=args.health_interval_ms / 1000.0,
            eject_after=args.eject_after,
        )
        await gateway.start()
        if args.port_file:
            _write_port_file(args.port_file, gateway.port)
        await gateway.wait_ready(workers=args.workers)
        for name, url in sorted(supervisor.endpoints().items()):
            print(f"  worker {name}: {url}")
        print(
            f"gateway listening on http://{gateway.host}:{gateway.port} "
            f"(workers={args.workers}, runtime={supervisor.runtime_dir})",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        await stop.wait()
        print("signal received — draining gateway", flush=True)
        await gateway.shutdown()
        snapshot = gateway.metrics.snapshot()
        total = sum(snapshot["requests_total"].values())
        print(
            f"gateway drained; routed {total} request(s), "
            f"{snapshot['failovers_total']} failover(s), "
            f"{supervisor.restarts_total} worker restart(s)",
            flush=True,
        )

    try:
        asyncio.run(_run())
    finally:
        supervisor.stop()
    print("fleet stopped", flush=True)
    return 0


def _cmd_delay_stream(args: argparse.Namespace) -> int:
    # Imported lazily like serve: the streams package is only needed
    # by the two stream subcommands.
    from repro.streams import StreamFormatError
    from repro.synthetic.delays import generate_delay_stream

    timetable = _load(args)
    shapes = None
    if args.shape:
        shapes = tuple(args.shape)
    try:
        stream = generate_delay_stream(
            timetable,
            seed=args.stream_seed,
            num_events=args.events,
            duration_s=args.duration,
            **({"shapes": shapes} if shapes else {}),
            max_trains_per_event=args.max_trains,
            name=args.name,
        )
    except (StreamFormatError, ValueError) as exc:
        raise SystemExit(f"error: {exc}") from None
    stream.save(args.output)
    print(
        f"wrote {stream.name}: {stream.num_events} event(s) over "
        f"{stream.duration_s:.1f} s (seed {stream.seed}, "
        f"{stream.num_trains} trains) to {args.output}"
    )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    """Replay a delay stream against a live target (docs/STREAMS.md).

    Exit 0 when the operational contract holds (zero failed requests,
    every event committed, swap-pause bound met), 1 otherwise; the
    report JSON goes to stdout either way.
    """
    from repro.streams import (
        DelayStream,
        ReplayConfig,
        ReplayError,
        StreamFormatError,
        replay_stream,
    )

    try:
        stream = DelayStream.load(args.stream)
    except (OSError, StreamFormatError) as exc:
        raise SystemExit(f"error: cannot load stream {args.stream}: {exc}") from None
    try:
        config = ReplayConfig(
            query_threads=args.query_threads,
            queries_seed=args.queries_seed,
            departure=args.departure,
            speed=args.speed,
            replan=args.replan,
            max_swap_seconds=args.max_swap_seconds,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None

    def backends() -> TransitBackend:
        return connect(args.remote)

    try:
        report = replay_stream(stream, backends, config)
    except (ReplayError, ValueError) as exc:
        raise SystemExit(f"error: {exc}") from None
    print(json.dumps(report.to_json(), sort_keys=True))
    if not report.ok:
        try:
            report.check()
        except ReplayError as exc:
            print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    result = run_table1(
        args.instance,
        scale=args.scale,
        num_queries=args.queries,
        seed=args.seed,
    )
    print(render_table1([result]))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    rows = run_table2(
        args.instance,
        scale=args.scale,
        num_queries=args.queries,
        seed=args.seed,
    )
    print(render_table2(rows))
    return 0


def _parse_band_overrides(pairs: list[str]) -> dict[str, float | None]:
    """``metric=0.3`` widens/narrows one metric's band; ``metric=skip``
    disables its gate entirely."""
    overrides: dict[str, float | None] = {}
    for pair in pairs:
        metric, sep, value = pair.partition("=")
        if not sep or not metric:
            raise SystemExit(
                f"error: --override expects METRIC=BAND or METRIC=skip, "
                f"got {pair!r}"
            )
        if value.lower() in ("skip", "none"):
            overrides[metric] = None
            continue
        try:
            band = float(value)
        except ValueError:
            raise SystemExit(
                f"error: --override {metric}: band must be a number or "
                f"'skip', got {value!r}"
            ) from None
        if band < 0:
            raise SystemExit(
                f"error: --override {metric}: band must be non-negative"
            )
        overrides[metric] = band
    return overrides


def _cmd_bench_index(args: argparse.Namespace) -> int:
    from repro.benchops import index_records

    summary = index_records(
        args.records, args.root, consume=not args.keep
    )
    for benchmark, trajectory in summary.indexed:
        print(f"indexed {benchmark} -> {trajectory}")
    for path, reason in summary.rejected:
        print(f"rejected {path}: {reason}", file=sys.stderr)
    if not summary.indexed and not summary.rejected:
        print(f"no pending records under {args.records}")
    return 1 if summary.rejected else 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    import json as _json

    from repro.benchops import (
        BenchOpsError,
        compare_latest,
        load_trajectory,
        trajectory_names,
        trajectory_path,
        validate_record,
    )

    overrides = _parse_band_overrides(args.override)
    candidate = None
    if args.candidate:
        try:
            candidate = validate_record(
                _json.loads(open(args.candidate).read())
            )
        except (OSError, ValueError, BenchOpsError) as exc:
            raise SystemExit(
                f"error: cannot load candidate {args.candidate}: {exc}"
            ) from None
    names = args.name or (
        [candidate.benchmark] if candidate else trajectory_names(args.root)
    )
    if not names:
        raise SystemExit(
            f"error: no BENCH_*.json trajectories under {args.root} "
            f"(run some benchmarks and `bench index` first)"
        )
    failed = False
    for name in names:
        path = trajectory_path(args.root, name)
        try:
            history = load_trajectory(path)
            report = compare_latest(
                history,
                candidate=candidate if candidate and candidate.benchmark == name else None,
                band=args.band,
                overrides=overrides,
            )
        except BenchOpsError as exc:
            raise SystemExit(f"error: {exc}") from None
        if report is None:
            print(
                f"[{name}] no comparable baseline (first run at this "
                f"scale/config) — nothing to gate"
            )
            continue
        verdict = "OK" if report.ok else "REGRESSED"
        print(f"[{name}] {verdict} (band ±{args.band * 100:g}%)")
        for line in report.describe().splitlines():
            print(f"  {line}")
        failed = failed or not report.ok
    return 1 if failed else 0


def _cmd_bench_show(args: argparse.Namespace) -> int:
    from repro.benchops import load_trajectory, trajectory_names, trajectory_path

    names = trajectory_names(args.root)
    if not names:
        print(f"no BENCH_*.json trajectories under {args.root}")
        return 0
    for name in names:
        history = load_trajectory(trajectory_path(args.root, name))
        latest = history[-1]
        sha = (latest.git_sha or "unknown")[:12]
        print(
            f"{name}: {len(history)} entries "
            f"(latest: scale={latest.scale}, git {sha}, "
            f"{len(latest.metrics)} metrics)"
        )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily like the bench commands: `repro lint --help`
    # must not pay for the analysis package.
    import json as json_module
    from pathlib import Path

    from repro.analysis.lint import (
        BaselineError,
        Project,
        default_config,
        describe_rules,
        load_baseline,
        run_lint,
        split_by_baseline,
        write_baseline,
    )
    from repro.analysis.lint.baseline import DEFAULT_BASELINE_NAME

    if args.list_rules:
        for name, description in describe_rules():
            print(f"{name}: {description}")
        return 0

    project = Project(args.root)
    try:
        report = run_lint(project, default_config(), args.rule or None)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    baseline_path = (
        Path(args.baseline)
        if args.baseline
        else project.root / DEFAULT_BASELINE_NAME
    )
    if args.write_baseline:
        write_baseline(report.findings, baseline_path)
        print(
            f"wrote {len(report.findings)} finding(s) to {baseline_path}"
        )
        return 0
    accepted: set[str] = set()
    if baseline_path.is_file():
        try:
            accepted = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif args.baseline:
        print(f"error: baseline {baseline_path} not found", file=sys.stderr)
        return 2
    new, baselined, stale = split_by_baseline(report.findings, accepted)

    if args.format == "json":
        print(
            json_module.dumps(
                {
                    "rules": report.rules_run,
                    "findings": [f.to_json() for f in new],
                    "baselined": len(baselined),
                    "suppressed": len(report.suppressed),
                    "stale_baseline_entries": sorted(stale),
                },
                indent=2,
            )
        )
    else:
        for finding in new:
            print(finding.render())
        for fingerprint in sorted(stale):
            print(
                f"stale baseline entry (no longer fires — remove it): "
                f"{fingerprint}"
            )
        summary = (
            f"{len(new)} finding(s), {len(baselined)} baselined, "
            f"{len(report.suppressed)} suppressed, "
            f"{len(stale)} stale baseline entr(y/ies) "
            f"[rules: {', '.join(report.rules_run)}]"
        )
        print(summary)
    return 1 if new or stale else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-transit",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_package_version()}",
        help="print the package version and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="emit a synthetic GTFS-like feed")
    p_gen.add_argument("--instance", choices=INSTANCE_NAMES, required=True)
    p_gen.add_argument("--scale", default="small", choices=("tiny", "small", "medium"))
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--output", required=True, help="output directory")
    p_gen.set_defaults(func=_cmd_generate)

    p_info = sub.add_parser(
        "info",
        help="summarize a timetable (or a store manifest via "
        "--from-store, without hydrating any artifact)",
    )
    _add_input_arguments(p_info, allow_store=True)
    p_info.set_defaults(func=_cmd_info)

    p_prepare = sub.add_parser(
        "prepare",
        help="build every prepared artifact and persist it to a store",
    )
    _add_input_arguments(p_prepare)
    p_prepare.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="artifact-store directory to write (created if missing)",
    )
    p_prepare.add_argument("--cores", type=int, default=4)
    p_prepare.add_argument("--kernel", choices=KERNELS, default="flat")
    p_prepare.add_argument(
        "--transfer-fraction",
        type=float,
        default=0.0,
        help="fraction of stations to use as transfer stations (0 = no table)",
    )
    p_prepare.set_defaults(func=_cmd_prepare)

    p_profile = sub.add_parser("profile", help="one-to-all profile query")
    _add_input_arguments(p_profile, allow_store=True, allow_remote=True)
    p_profile.add_argument("--source", type=int, required=True)
    p_profile.add_argument("--target", type=int, default=None)
    p_profile.add_argument(
        "--cores", type=int, default=None, help="per-query cores (default: 4)"
    )
    p_profile.add_argument("--max-points", type=int, default=6)
    p_profile.add_argument(
        "--kernel", choices=KERNELS, default=None,
        help="search kernel (default: flat; not valid with --from-store)",
    )
    p_profile.set_defaults(func=_cmd_profile)

    p_query = sub.add_parser("query", help="station-to-station query")
    _add_input_arguments(p_query, allow_store=True, allow_remote=True)
    p_query.add_argument("--source", type=int, required=True)
    p_query.add_argument("--target", type=int, required=True)
    p_query.add_argument(
        "--cores", type=int, default=None, help="per-query cores (default: 4)"
    )
    p_query.add_argument(
        "--transfer-fraction",
        type=float,
        default=None,
        help="fraction of stations to use as transfer stations "
        "(default: 0 = no table; not valid with --from-store)",
    )
    p_query.add_argument(
        "--kernel", choices=KERNELS, default=None,
        help="search kernel (default: flat; not valid with --from-store)",
    )
    p_query.set_defaults(func=_cmd_query)

    def _add_shape_flags(p: argparse.ArgumentParser) -> None:
        """The flags the new request-shape commands share with
        ``query``: dataset-shaping ones stay ``None``-defaulted so
        ``--from-store``/``--remote`` can reject explicit values."""
        p.add_argument("--source", type=int, required=True)
        p.add_argument("--target", type=int, required=True)
        p.add_argument(
            "--departure",
            type=int,
            required=True,
            help="departure time in minutes after midnight",
        )
        p.add_argument(
            "--kernel", choices=KERNELS, default=None,
            help="search kernel (default: flat; not valid with "
            "--from-store)",
        )
        p.add_argument(
            "--transfer-fraction",
            type=float,
            default=None,
            help="fraction of stations to use as transfer stations "
            "(default: 0 = no table; not valid with --from-store)",
        )

    p_mc = sub.add_parser(
        "multicriteria",
        help="Pareto front of (transfers, arrival) trade-offs for one "
        "station pair at a departure time",
    )
    _add_input_arguments(p_mc, allow_store=True, allow_remote=True)
    _add_shape_flags(p_mc)
    p_mc.add_argument(
        "--max-transfers", type=int, default=5,
        help="transfer budget bounding the front (default: 5)",
    )
    p_mc.set_defaults(func=_cmd_multicriteria)

    p_via = sub.add_parser(
        "via",
        help="earliest arrival through a required via station",
    )
    _add_input_arguments(p_via, allow_store=True, allow_remote=True)
    _add_shape_flags(p_via)
    p_via.add_argument(
        "--via", type=int, required=True, dest="via",
        help="station the journey must pass through",
    )
    p_via.set_defaults(func=_cmd_via)

    p_mt = sub.add_parser(
        "min-transfers",
        help="fewest-transfers journey within a transfer budget",
    )
    _add_input_arguments(p_mt, allow_store=True, allow_remote=True)
    _add_shape_flags(p_mt)
    p_mt.add_argument(
        "--max-transfers", type=int, default=5,
        help="transfer budget (default: 5)",
    )
    p_mt.set_defaults(func=_cmd_min_transfers)

    p_batch = sub.add_parser(
        "batch", help="batched random query workload (throughput check)"
    )
    _add_input_arguments(p_batch, allow_store=True, allow_remote=True)
    p_batch.add_argument(
        "--n-queries", type=int, default=20, help="random (source, target) pairs"
    )
    p_batch.add_argument(
        "--cores", type=int, default=None, help="per-query cores (default: 1)"
    )
    p_batch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool workers distributing queries (default: 4)",
    )
    p_batch.add_argument("--backend", choices=BATCH_BACKENDS, default=None)
    p_batch.add_argument(
        "--kernel", choices=KERNELS, default=None,
        help="search kernel (default: flat; not valid with --from-store)",
    )
    p_batch.add_argument(
        "--transfer-fraction",
        type=float,
        default=None,
        help="fraction of stations to use as transfer stations "
        "(default: 0 = no table; not valid with --from-store)",
    )
    p_batch.add_argument(
        "--json",
        action="store_true",
        help="print a one-line JSON throughput summary instead of text",
    )
    p_batch.set_defaults(func=_cmd_batch)

    p_serve = sub.add_parser(
        "serve",
        help="async multi-dataset HTTP query server over artifact stores",
    )
    p_serve.add_argument(
        "--store",
        action="append",
        required=True,
        metavar="DIR",
        help="artifact store to serve (repeatable; the directory "
        "basename names the dataset)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port",
        type=int,
        default=8321,
        help="listening port (0 = ephemeral, printed on startup)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=4,
        help="query worker threads (default: 4)",
    )
    p_serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="admission bound: further query requests get a fast 503 "
        "(default: 64)",
    )
    p_serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="micro-batch collection window for concurrent journey "
        "requests, in ms (0 disables micro-batching; default: 2)",
    )
    p_serve.add_argument(
        "--batch-max",
        type=int,
        default=8,
        help="micro-batch size cap (default: 8)",
    )
    p_serve.add_argument(
        "--port-file",
        metavar="PATH",
        default=None,
        help="write the bound port to PATH atomically after binding "
        "(machine-readable discovery for --port 0; the fleet "
        "supervisor relies on this)",
    )
    p_serve.add_argument(
        "--drain-grace-ms",
        type=float,
        default=0.0,
        help="on shutdown, report 'draining' on /healthz for this long "
        "while still serving, before rejecting anything — gives load "
        "balancers time to stop routing (default: 0)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_fleet = sub.add_parser(
        "serve-fleet",
        help="sharded multi-process serve fleet behind a routing "
        "gateway (see docs/FLEET.md)",
    )
    p_fleet.add_argument(
        "--store",
        action="append",
        required=True,
        metavar="DIR",
        help="artifact store every worker serves (repeatable; the "
        "directory basename names the dataset)",
    )
    p_fleet.add_argument("--host", default="127.0.0.1")
    p_fleet.add_argument(
        "--port",
        type=int,
        default=8321,
        help="gateway listening port (0 = ephemeral; default: 8321)",
    )
    p_fleet.add_argument(
        "--port-file",
        metavar="PATH",
        default=None,
        help="write the gateway's bound port to PATH atomically",
    )
    p_fleet.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker *processes* to spawn (default: 2)",
    )
    p_fleet.add_argument(
        "--worker-threads",
        type=int,
        default=4,
        help="query threads per worker process (default: 4)",
    )
    p_fleet.add_argument(
        "--max-inflight",
        type=int,
        default=256,
        help="gateway admission bound (default: 256)",
    )
    p_fleet.add_argument(
        "--worker-max-inflight",
        type=int,
        default=64,
        help="per-worker admission bound (default: 64)",
    )
    p_fleet.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="per-worker micro-batch window in ms (default: 2)",
    )
    p_fleet.add_argument(
        "--batch-max",
        type=int,
        default=8,
        help="per-worker micro-batch size cap (default: 8)",
    )
    p_fleet.add_argument(
        "--health-interval-ms",
        type=float,
        default=250.0,
        help="gateway health-check interval in ms (default: 250)",
    )
    p_fleet.add_argument(
        "--eject-after",
        type=int,
        default=2,
        help="consecutive failed health checks before ejecting a "
        "worker (default: 2; any failed forward ejects immediately)",
    )
    p_fleet.add_argument(
        "--worker-drain-grace-ms",
        type=float,
        default=200.0,
        help="workers' readiness grace on shutdown (default: 200)",
    )
    p_fleet.add_argument(
        "--runtime-dir",
        metavar="DIR",
        default=None,
        help="directory for worker port files and logs (default: a "
        "fresh temp directory)",
    )
    p_fleet.set_defaults(func=_cmd_serve_fleet)

    p_stream = sub.add_parser(
        "delay-stream",
        help="generate a seeded GTFS-RT-style delay stream "
        "(docs/STREAMS.md)",
    )
    _add_input_arguments(p_stream)
    p_stream.add_argument(
        "--output", required=True, metavar="FILE",
        help="stream JSON file to write",
    )
    p_stream.add_argument(
        "--stream-seed", type=int, default=0,
        help="seed for the event sequence (independent of --seed, "
        "which shapes the synthetic instance; default: 0)",
    )
    p_stream.add_argument(
        "--events", type=int, default=20,
        help="number of delay batches (default: 20)",
    )
    p_stream.add_argument(
        "--duration", type=float, default=10.0, metavar="SECONDS",
        help="replay-time window the events spread over (default: 10)",
    )
    p_stream.add_argument(
        "--shape", action="append", metavar="NAME",
        choices=STREAM_SHAPES,
        help=f"restrict disruption shapes (repeatable; "
        f"default: all of {', '.join(STREAM_SHAPES)})",
    )
    p_stream.add_argument(
        "--max-trains", type=int, default=5,
        help="batch-size cap per event, except line closures "
        "(default: 5)",
    )
    p_stream.add_argument(
        "--name", default=None,
        help="stream name (default: derived from the timetable)",
    )
    p_stream.set_defaults(func=_cmd_delay_stream)

    p_replay = sub.add_parser(
        "replay",
        help="replay a delay stream against a live serve/serve-fleet "
        "target with closed-loop query traffic (docs/STREAMS.md)",
    )
    p_replay.add_argument(
        "--stream", required=True, metavar="FILE",
        help="stream JSON written by `delay-stream`",
    )
    p_replay.add_argument(
        "--remote", required=True, metavar="URL",
        help="live target: http://host:port[/dataset] of a "
        "`serve` worker or a `serve-fleet` gateway",
    )
    p_replay.add_argument(
        "--query-threads", type=int, default=2,
        help="closed-loop query worker threads (default: 2)",
    )
    p_replay.add_argument(
        "--queries-seed", type=int, default=0,
        help="seed for the random query mix (default: 0)",
    )
    p_replay.add_argument(
        "--departure", type=int, default=480,
        help="journey departure time in minutes (default: 480)",
    )
    p_replay.add_argument(
        "--speed", type=float, default=1.0,
        help="stream clock multiplier (2.0 replays twice as fast; "
        "default: 1)",
    )
    p_replay.add_argument(
        "--replan", choices=("full", "incremental"), default="full",
        help="replan mode forwarded on every delay post (default: full)",
    )
    p_replay.add_argument(
        "--max-swap-seconds", type=float, default=None,
        help="fail (exit 1) if any swap acknowledgement exceeds this "
        "(default: unchecked)",
    )
    p_replay.set_defaults(func=_cmd_replay)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark ops: index result records into BENCH_*.json "
        "trajectories and gate runs against the last known-good entry",
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    p_bindex = bench_sub.add_parser(
        "index",
        help="validate pending record files and append them to the "
        "per-benchmark trajectories",
    )
    p_bindex.add_argument(
        "--records",
        default="benchmarks/records",
        metavar="DIR",
        help="pending-record directory written by a bench session "
        "(default: benchmarks/records)",
    )
    p_bindex.add_argument(
        "--root",
        default=".",
        metavar="DIR",
        help="directory holding the BENCH_*.json trajectories "
        "(default: the current directory — the repo root)",
    )
    p_bindex.add_argument(
        "--keep",
        action="store_true",
        help="leave consumed record files in place (default: delete "
        "them so re-indexing is idempotent)",
    )
    p_bindex.set_defaults(func=_cmd_bench_index)

    p_bcompare = bench_sub.add_parser(
        "compare",
        help="gate the newest trajectory entry (or --candidate FILE) "
        "against the last known-good entry; exit 1 on regression",
    )
    p_bcompare.add_argument(
        "--root", default=".", metavar="DIR",
        help="trajectory directory (default: current directory)",
    )
    p_bcompare.add_argument(
        "--name",
        action="append",
        metavar="BENCHMARK",
        help="benchmark trajectory to gate (repeatable; default: all)",
    )
    p_bcompare.add_argument(
        "--candidate",
        metavar="FILE",
        help="gate a not-yet-indexed record file instead of the "
        "trajectory's newest entry",
    )
    p_bcompare.add_argument(
        "--band",
        type=float,
        default=0.15,
        help="symmetric relative noise band; movement in the bad "
        "direction strictly beyond it fails (default: 0.15)",
    )
    p_bcompare.add_argument(
        "--override",
        action="append",
        default=[],
        metavar="METRIC=BAND",
        help="per-metric band override (METRIC=0.5 widens, METRIC=skip "
        "disables; repeatable)",
    )
    p_bcompare.set_defaults(func=_cmd_bench_compare)

    p_bshow = bench_sub.add_parser(
        "show", help="summarize every trajectory under --root"
    )
    p_bshow.add_argument(
        "--root", default=".", metavar="DIR",
        help="trajectory directory (default: current directory)",
    )
    p_bshow.set_defaults(func=_cmd_bench_show)

    p_lint = sub.add_parser(
        "lint",
        help="run the repo-aware static analysis suite (docs/ANALYSIS.md)",
    )
    p_lint.add_argument(
        "--root", default=".", metavar="DIR",
        help="repository root to analyse (default: current directory)",
    )
    p_lint.add_argument(
        "--rule", action="append", metavar="NAME",
        help="run only this rule (repeatable; default: all registered)",
    )
    p_lint.add_argument(
        "--baseline", metavar="FILE",
        help="baseline file of accepted fingerprints "
        "(default: <root>/lint-baseline.json when present)",
    )
    p_lint.add_argument(
        "--write-baseline", action="store_true",
        help="accept every current finding into the baseline and exit 0",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="finding output format (default: text)",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    p_lint.set_defaults(func=_cmd_lint)

    for name, fn in (("table1", _cmd_table1), ("table2", _cmd_table2)):
        p_tab = sub.add_parser(name, help=f"regenerate {name} for an instance")
        p_tab.add_argument("--instance", choices=INSTANCE_NAMES, required=True)
        p_tab.add_argument(
            "--scale", default="small", choices=("tiny", "small", "medium")
        )
        p_tab.add_argument("--queries", type=int, default=5)
        p_tab.add_argument("--seed", type=int, default=0)
        p_tab.set_defaults(func=fn)

    return parser


def _package_version() -> str:
    # Imported lazily: repro/__init__ imports broadly; the CLI module
    # must stay importable as `repro.cli` without that cost up front.
    from repro import __version__

    return __version__


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BackendError as exc:
        # Typed client/transport failures (connection refused, retry
        # budget exhausted, server-side rejection) are user errors or
        # operational conditions, not tracebacks.
        raise SystemExit(f"error: {exc}") from None


if __name__ == "__main__":
    sys.exit(main())
