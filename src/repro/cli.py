"""Command-line interface (``repro-transit``).

Subcommands::

    generate   emit a named synthetic instance as a GTFS-like feed
    info       summarize a timetable (stations, connections, density)
    profile    one-to-all profile query from a station
    query      station-to-station profile query
    batch      run a batched random query workload (throughput check)
    table1     regenerate Table 1 rows for an instance
    table2     regenerate Table 2 rows for an instance

``profile``, ``query`` and ``batch`` accept ``--kernel {python,flat}``:
``python`` is the reference object-graph SPCS, ``flat`` the packed
flat-array kernel (identical results, several times faster).

Timetables are read either from a GTFS-like directory (``--gtfs DIR``)
or generated on the fly (``--instance NAME [--scale SCALE]``).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import render_table1, render_table2, run_table1, run_table2
from repro.core import KERNELS, parallel_profile_search
from repro.graph import build_td_graph
from repro.query import (
    BATCH_BACKENDS,
    BatchQueryEngine,
    StationToStationEngine,
    build_distance_table,
    select_transfer_stations,
)
from repro.synthetic.workloads import random_station_pairs
from repro.synthetic import INSTANCE_NAMES, make_instance
from repro.timetable.gtfs import load_gtfs, save_gtfs
from repro.timetable.periodic import format_time
from repro.timetable.types import Timetable


def _add_input_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--instance", choices=INSTANCE_NAMES, help="synthetic instance name"
    )
    group.add_argument("--gtfs", help="GTFS-like feed directory")
    parser.add_argument(
        "--scale",
        default="small",
        choices=("tiny", "small", "medium"),
        help="synthetic instance scale (default: small)",
    )
    parser.add_argument("--seed", type=int, default=0)


def _load(args: argparse.Namespace) -> Timetable:
    if args.gtfs:
        return load_gtfs(args.gtfs)
    return make_instance(args.instance, args.scale, args.seed)


def _cmd_generate(args: argparse.Namespace) -> int:
    timetable = make_instance(args.instance, args.scale, args.seed)
    save_gtfs(timetable, args.output)
    print(f"wrote {timetable.summary()} to {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    timetable = _load(args)
    graph = build_td_graph(timetable)
    print(timetable.summary())
    print(
        f"time-dependent graph: {graph.num_nodes} nodes "
        f"({graph.num_stations} station, {graph.num_route_nodes} route), "
        f"{graph.num_edges} edges, {len(graph.routes)} routes"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    timetable = _load(args)
    graph = build_td_graph(timetable)
    result = parallel_profile_search(
        graph, args.source, args.cores, kernel=args.kernel
    )
    stats = result.stats
    print(
        f"one-to-all from station {args.source} on {args.cores} cores: "
        f"{stats.settled_connections} settled connections, "
        f"simulated time {stats.simulated_time * 1000:.1f} ms"
    )
    targets = (
        range(timetable.num_stations) if args.target is None else [args.target]
    )
    for target in targets:
        if target == args.source:
            continue
        profile = result.profile(target)
        points = ", ".join(
            f"{format_time(dep)}→{format_time(dep + dur)}"
            for dep, dur in profile.connection_points()[: args.max_points]
        )
        suffix = " ..." if len(profile) > args.max_points else ""
        print(f"  to {target:4d} ({len(profile):3d} points): {points}{suffix}")
    return 0


def _build_table(args: argparse.Namespace, timetable: Timetable, graph):
    """Distance table for the ``--transfer-fraction`` option (shared by
    ``query`` and ``batch``); None when the option is off."""
    if args.transfer_fraction <= 0:
        return None
    stations = select_transfer_stations(
        timetable, method="contraction", fraction=args.transfer_fraction
    )
    table = build_distance_table(graph, stations, num_threads=args.cores)
    print(
        f"distance table over {stations.size} transfer stations "
        f"({table.size_mib():.2f} MiB, built in {table.build_seconds:.1f} s)"
    )
    return table


def _cmd_query(args: argparse.Namespace) -> int:
    timetable = _load(args)
    graph = build_td_graph(timetable)
    table = _build_table(args, timetable, graph)
    engine = StationToStationEngine(
        graph, table, num_threads=args.cores, kernel=args.kernel
    )
    result = engine.query(args.source, args.target)
    print(
        f"{args.source} → {args.target} ({result.classification}): "
        f"{result.settled_connections} settled connections, "
        f"simulated time {result.simulated_time * 1000:.1f} ms"
    )
    if result.profile.is_empty():
        print("  no connections found (target unreachable)")
    for dep, dur in result.profile.connection_points():
        print(f"  depart {format_time(dep)}  arrive {format_time(dep + dur)}  ({dur} min)")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    timetable = _load(args)
    graph = build_td_graph(timetable)
    table = _build_table(args, timetable, graph)
    pairs = random_station_pairs(timetable, args.n_queries, seed=args.seed)
    engine = BatchQueryEngine(
        graph,
        table,
        kernel=args.kernel,
        backend=args.backend,
        workers=args.workers,
        num_threads=args.cores,
    )
    batch = engine.query_many(pairs)
    stats = batch.stats
    settled = sum(r.settled_connections for r in batch)
    print(
        f"{stats.num_queries} queries on kernel={stats.kernel} "
        f"backend={stats.backend} workers={stats.num_workers}: "
        f"{stats.total_seconds * 1000:.1f} ms total "
        f"({stats.queries_per_second:.1f} queries/s, "
        f"setup {stats.setup_seconds * 1000:.1f} ms, "
        f"{settled} settled connections)"
    )
    for (s, t), result in zip(pairs, batch):
        best = (
            "unreachable"
            if result.profile.is_empty()
            else f"{len(result.profile)} profile points"
        )
        print(f"  {s:4d} → {t:4d} ({result.classification}): {best}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    result = run_table1(
        args.instance,
        scale=args.scale,
        num_queries=args.queries,
        seed=args.seed,
    )
    print(render_table1([result]))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    rows = run_table2(
        args.instance,
        scale=args.scale,
        num_queries=args.queries,
        seed=args.seed,
    )
    print(render_table2(rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-transit",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="emit a synthetic GTFS-like feed")
    p_gen.add_argument("--instance", choices=INSTANCE_NAMES, required=True)
    p_gen.add_argument("--scale", default="small", choices=("tiny", "small", "medium"))
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--output", required=True, help="output directory")
    p_gen.set_defaults(func=_cmd_generate)

    p_info = sub.add_parser("info", help="summarize a timetable")
    _add_input_arguments(p_info)
    p_info.set_defaults(func=_cmd_info)

    p_profile = sub.add_parser("profile", help="one-to-all profile query")
    _add_input_arguments(p_profile)
    p_profile.add_argument("--source", type=int, required=True)
    p_profile.add_argument("--target", type=int, default=None)
    p_profile.add_argument("--cores", type=int, default=4)
    p_profile.add_argument("--max-points", type=int, default=6)
    p_profile.add_argument("--kernel", choices=KERNELS, default="flat")
    p_profile.set_defaults(func=_cmd_profile)

    p_query = sub.add_parser("query", help="station-to-station query")
    _add_input_arguments(p_query)
    p_query.add_argument("--source", type=int, required=True)
    p_query.add_argument("--target", type=int, required=True)
    p_query.add_argument("--cores", type=int, default=4)
    p_query.add_argument(
        "--transfer-fraction",
        type=float,
        default=0.0,
        help="fraction of stations to use as transfer stations (0 = no table)",
    )
    p_query.add_argument("--kernel", choices=KERNELS, default="flat")
    p_query.set_defaults(func=_cmd_query)

    p_batch = sub.add_parser(
        "batch", help="batched random query workload (throughput check)"
    )
    _add_input_arguments(p_batch)
    p_batch.add_argument(
        "--n-queries", type=int, default=20, help="random (source, target) pairs"
    )
    p_batch.add_argument("--cores", type=int, default=1)
    p_batch.add_argument(
        "--workers", type=int, default=4, help="pool workers distributing queries"
    )
    p_batch.add_argument("--backend", choices=BATCH_BACKENDS, default="serial")
    p_batch.add_argument("--kernel", choices=KERNELS, default="flat")
    p_batch.add_argument(
        "--transfer-fraction",
        type=float,
        default=0.0,
        help="fraction of stations to use as transfer stations (0 = no table)",
    )
    p_batch.set_defaults(func=_cmd_batch)

    for name, fn in (("table1", _cmd_table1), ("table2", _cmd_table2)):
        p_tab = sub.add_parser(name, help=f"regenerate {name} for an instance")
        p_tab.add_argument("--instance", choices=INSTANCE_NAMES, required=True)
        p_tab.add_argument(
            "--scale", default="small", choices=("tiny", "small", "medium")
        )
        p_tab.add_argument("--queries", type=int, default=5)
        p_tab.add_argument("--seed", type=int, default=0)
        p_tab.set_defaults(func=fn)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
