"""Reproducible random query workloads (paper §5 picks stations
uniformly at random)."""

from __future__ import annotations

import random

from repro.timetable.types import Timetable


def random_sources(
    timetable: Timetable, count: int, seed: int = 0
) -> list[int]:
    """``count`` source stations, uniform with replacement."""
    if timetable.num_stations == 0:
        raise ValueError("timetable has no stations")
    rng = random.Random(seed)
    return [rng.randrange(timetable.num_stations) for _ in range(count)]


def random_station_pairs(
    timetable: Timetable, count: int, seed: int = 0
) -> list[tuple[int, int]]:
    """``count`` (source, target) pairs with distinct endpoints."""
    if timetable.num_stations < 2:
        raise ValueError("need at least two stations for pairs")
    rng = random.Random(seed)
    pairs = []
    while len(pairs) < count:
        s = rng.randrange(timetable.num_stations)
        t = rng.randrange(timetable.num_stations)
        if s != t:
            pairs.append((s, t))
    return pairs
