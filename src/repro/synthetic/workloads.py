"""Reproducible random query workloads (paper §5 picks stations
uniformly at random).

Each generator accepts either a :class:`Timetable` or a bare station
count: remote clients (``repro.client``) know only the served
dataset's size — same seed, same count, same workload either way.
"""

from __future__ import annotations

import random

from repro.timetable.types import Timetable


def _num_stations(timetable: Timetable | int) -> int:
    if isinstance(timetable, int):
        return timetable
    return timetable.num_stations


def random_sources(
    timetable: Timetable | int, count: int, seed: int = 0
) -> list[int]:
    """``count`` source stations, uniform with replacement."""
    stations = _num_stations(timetable)
    if stations == 0:
        raise ValueError("timetable has no stations")
    rng = random.Random(seed)
    return [rng.randrange(stations) for _ in range(count)]


def random_station_pairs(
    timetable: Timetable | int, count: int, seed: int = 0
) -> list[tuple[int, int]]:
    """``count`` (source, target) pairs with distinct endpoints."""
    stations = _num_stations(timetable)
    if stations < 2:
        raise ValueError("need at least two stations for pairs")
    rng = random.Random(seed)
    pairs = []
    while len(pairs) < count:
        s = rng.randrange(stations)
        t = rng.randrange(stations)
        if s != t:
            pairs.append((s, t))
    return pairs
