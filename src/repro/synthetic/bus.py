"""Synthetic city bus networks (the Oahu / Los Angeles / Washington
analogues).

Stations form a grid; routes are monotone staircase paths between
random grid points, run in both directions all day with rush-hour
densification (:mod:`repro.synthetic.schedules`).  A coverage pass
guarantees every station is served, and since every line runs both
ways, the station graph is strongly connected whenever it is connected
as an undirected graph.

The defining property mirrored from the paper's city feeds is a *high
connections-per-station ratio* (hundreds per station at full scale):
that ratio drives self-pruning efficacy and parallel scalability
(§5.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.synthetic.schedules import SchedulePattern, daily_departures
from repro.timetable.builder import TimetableBuilder
from repro.timetable.types import Timetable


@dataclass(frozen=True, slots=True)
class BusNetworkConfig:
    """Parameters of a synthetic bus network."""

    width: int = 8
    height: int = 6
    num_routes: int = 20
    min_route_length: int = 4
    max_route_length: int = 10
    #: Inclusive range the per-route base headway is drawn from.
    headway_range: tuple[int, int] = (10, 25)
    rush_factor: int = 3
    #: Inclusive range of per-leg ride times in minutes.
    leg_time_range: tuple[int, int] = (2, 6)
    #: Inclusive range of station transfer times.
    transfer_range: tuple[int, int] = (1, 4)
    seed: int = 0
    name: str = "bus"

    def __post_init__(self) -> None:
        if self.width < 2 or self.height < 2:
            raise ValueError("grid must be at least 2x2")
        if self.min_route_length < 2:
            raise ValueError("routes need at least 2 stops")
        if self.max_route_length < self.min_route_length:
            raise ValueError("max_route_length < min_route_length")


def _staircase_path(
    rng: random.Random,
    start: tuple[int, int],
    end: tuple[int, int],
    max_length: int,
) -> list[tuple[int, int]]:
    """Monotone grid path from start to end, random step interleaving."""
    x, y = start
    path = [(x, y)]
    dx = 1 if end[0] >= x else -1
    dy = 1 if end[1] >= y else -1
    while (x, y) != end and len(path) < max_length:
        moves = []
        if x != end[0]:
            moves.append("x")
        if y != end[1]:
            moves.append("y")
        if rng.choice(moves) == "x":
            x += dx
        else:
            y += dy
        path.append((x, y))
    return path


def generate_bus_network(config: BusNetworkConfig) -> Timetable:
    """Generate a bus timetable from a configuration (deterministic in
    ``config.seed``)."""
    rng = random.Random(config.seed)
    builder = TimetableBuilder(name=config.name)

    station_at: dict[tuple[int, int], int] = {}
    for y in range(config.height):
        for x in range(config.width):
            station_at[(x, y)] = builder.add_station(
                f"{config.name}-{x}-{y}",
                transfer_time=rng.randint(*config.transfer_range),
            )

    covered: set[tuple[int, int]] = set()
    # Ride time is a property of the street segment, not of the line:
    # two lines sharing a leg must agree on its duration, otherwise a
    # shared station sequence would yield an overtaking (non-FIFO) route.
    leg_time: dict[tuple[tuple[int, int], tuple[int, int]], int] = {}

    def leg_minutes(a: tuple[int, int], b: tuple[int, int]) -> int:
        key = (min(a, b), max(a, b))
        if key not in leg_time:
            leg_time[key] = rng.randint(*config.leg_time_range)
        return leg_time[key]

    def add_line(path: list[tuple[int, int]]) -> None:
        """One bidirectional line along ``path`` with its own schedule."""
        if len(path) < 2:
            return
        covered.update(path)
        leg_times = [
            leg_minutes(path[k], path[k + 1]) for k in range(len(path) - 1)
        ]
        pattern = SchedulePattern(
            base_headway=rng.randint(*config.headway_range),
            rush_factor=config.rush_factor,
            jitter=1,
        )
        for stops, legs in (
            (path, leg_times),
            (path[::-1], leg_times[::-1]),
        ):
            offset = rng.randint(0, pattern.base_headway)
            for dep in daily_departures(pattern, rng, offset=offset):
                t = dep
                trip = [(station_at[stops[0]], t)]
                for k, leg in enumerate(legs):
                    t += leg
                    trip.append((station_at[stops[k + 1]], t))
                builder.add_trip(trip)

    all_cells = sorted(station_at)
    for _ in range(config.num_routes):
        start = rng.choice(all_cells)
        end = rng.choice(all_cells)
        if start == end:
            continue
        path = _staircase_path(rng, start, end, config.max_route_length)
        if len(path) >= config.min_route_length:
            add_line(path)

    # Coverage pass: make sure no station is left unserved by chaining
    # each uncovered cell to the nearest covered one.
    for cell in all_cells:
        if cell in covered:
            continue
        anchor = min(
            covered or {c for c in all_cells if c != cell},
            key=lambda c: abs(c[0] - cell[0]) + abs(c[1] - cell[1]),
        )
        path = _staircase_path(rng, cell, anchor, config.max_route_length)
        add_line(path)

    # Connectivity pass: coverage alone can leave disjoint line systems.
    # Every line is bidirectional, so linking undirected components makes
    # the station graph strongly connected.
    parent = {cell: cell for cell in all_cells}

    def find(cell):
        while parent[cell] != cell:
            parent[cell] = parent[parent[cell]]
            cell = parent[cell]
        return cell

    def union(a, b):
        parent[find(a)] = find(b)

    def register(path):
        for a, b in zip(path, path[1:]):
            union(a, b)

    # Rebuild component structure from the emitted connections.
    cell_of_station = {sid: cell for cell, sid in station_at.items()}
    for c in builder.iter_connections():
        union(cell_of_station[c.dep_station], cell_of_station[c.arr_station])

    while True:
        roots: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for cell in all_cells:
            roots.setdefault(find(cell), []).append(cell)
        if len(roots) <= 1:
            break
        groups = sorted(roots.values(), key=len, reverse=True)
        main, other = groups[0], groups[1]
        a, b = min(
            ((x, y) for x in main for y in other),
            key=lambda pair: abs(pair[0][0] - pair[1][0])
            + abs(pair[0][1] - pair[1][1]),
        )
        path = _staircase_path(rng, a, b, config.width + config.height)
        add_line(path)
        register(path)

    return builder.build()
