"""Synthetic public-transportation networks.

The paper evaluates on three GTFS city feeds (Oahu, Los Angeles,
Washington D.C.) and two HaCon railway timetables (Germany, Europe),
none of which are redistributable.  These generators emit networks with
the same *shape* at laptop scale (DESIGN.md §3):

* :mod:`repro.synthetic.schedules` — daily departure patterns with rush
  hours and an operational night break (the cause of the equal
  time-slots partition imbalance, §3.2);
* :mod:`repro.synthetic.bus` — dense grid city bus networks (high
  connections-per-station ratio);
* :mod:`repro.synthetic.rail` — sparse hierarchical hub-and-spoke
  railway networks (low ratio — the Europe scalability anomaly, §5.1);
* :mod:`repro.synthetic.instances` — the five named instances mirroring
  the paper's inputs, with a ``scale`` knob;
* :mod:`repro.synthetic.workloads` — reproducible random query sets;
* :mod:`repro.synthetic.delays` — seeded GTFS-RT-style delay streams
  (rush-hour cascades, rolling disruptions, line closures, recoveries)
  for the replay harness (:mod:`repro.streams`).
"""

from repro.synthetic.schedules import SchedulePattern, daily_departures
from repro.synthetic.bus import BusNetworkConfig, generate_bus_network
from repro.synthetic.rail import RailNetworkConfig, generate_rail_network
from repro.synthetic.instances import (
    INSTANCE_NAMES,
    instance_config,
    make_instance,
)
from repro.synthetic.workloads import random_sources, random_station_pairs
from repro.synthetic.delays import STREAM_SHAPES, generate_delay_stream

__all__ = [
    "SchedulePattern",
    "daily_departures",
    "BusNetworkConfig",
    "generate_bus_network",
    "RailNetworkConfig",
    "generate_rail_network",
    "INSTANCE_NAMES",
    "instance_config",
    "make_instance",
    "random_sources",
    "random_station_pairs",
    "STREAM_SHAPES",
    "generate_delay_stream",
]
