"""Seeded synthetic delay streams (GTFS-RT-shaped event feeds).

Generates the live-traffic half of the dynamic scenario the paper
claims SPCS handles without preprocessing (§5.1): a timestamped
sequence of delay batches against one synthetic timetable, with the
disruption shapes real feeds exhibit:

* **rush-hour cascade** — consecutive trains of one route pick up
  growing knock-on delays from a mid-route stop, the classic
  headway-compression pattern;
* **rolling disruption** — moderate independent delays hopping across
  unrelated trains (weather, staffing);
* **line closure** — every train of one route held heavily from its
  first stop (signal failure on the line);
* **recovering delay** — a large hit paired with per-leg slack, so the
  lateness decays downstream (drivers making time back).  Note delays
  can never *reduce* prior lateness (``repro.timetable.delays``:
  lateness resets per batch), so recovery is always modelled as slack
  inside one batch, never as a negative follow-up.

Everything is driven by one :class:`random.Random` seed — same
timetable, same seed, same stream, which is what lets CI replay a
committed scenario and the bench pin regression numbers.  Streams are
composable with :mod:`repro.synthetic.workloads` query mixes by
construction: the replay harness (:mod:`repro.streams.replay`) pairs
any stream with any seeded query workload.
"""

from __future__ import annotations

import random

from repro.streams.model import DelayEvent, DelayStream
from repro.timetable.delays import Delay
from repro.timetable.routes import partition_routes
from repro.timetable.types import Timetable

__all__ = ["STREAM_SHAPES", "generate_delay_stream"]

STREAM_SHAPES = (
    "rush_hour_cascade",
    "rolling_disruption",
    "line_closure",
    "recovering_delay",
)


def _train_legs(timetable: Timetable) -> dict[int, int]:
    legs: dict[int, int] = {}
    for c in timetable.connections:
        legs[c.train] = legs.get(c.train, 0) + 1
    return legs


def generate_delay_stream(
    timetable: Timetable,
    *,
    seed: int = 0,
    num_events: int = 20,
    duration_s: float = 10.0,
    shapes: tuple[str, ...] = STREAM_SHAPES,
    max_trains_per_event: int = 5,
    name: str | None = None,
) -> DelayStream:
    """A seeded stream of ``num_events`` delay batches spread over
    ``duration_s`` seconds of replay time.

    ``shapes`` restricts which disruption patterns occur (each event
    draws one uniformly); ``max_trains_per_event`` caps the batch size
    for every shape except ``line_closure``, which by nature touches
    every train of the closed route.
    """
    if num_events < 1:
        raise ValueError(f"num_events must be >= 1, got {num_events}")
    if duration_s < 0:
        raise ValueError(f"duration_s must be >= 0, got {duration_s}")
    if max_trains_per_event < 1:
        raise ValueError(
            f"max_trains_per_event must be >= 1, got {max_trains_per_event}"
        )
    unknown = set(shapes) - set(STREAM_SHAPES)
    if unknown:
        raise ValueError(
            f"unknown stream shapes {sorted(unknown)}; "
            f"valid: {list(STREAM_SHAPES)}"
        )
    if not timetable.connections:
        raise ValueError("timetable has no connections")

    rng = random.Random(seed)
    routes = partition_routes(timetable)
    legs = _train_legs(timetable)

    # Uniform arrival times over the stream window, sorted — bursts
    # emerge naturally from the uniform draw, matching the "trickle
    # with occasional pile-ups" character of real feeds.
    offsets = sorted(rng.uniform(0.0, duration_s) for _ in range(num_events))

    events = []
    for t_offset in offsets:
        shape = shapes[rng.randrange(len(shapes))]
        route = routes[rng.randrange(len(routes))]
        slack = 0
        if shape == "rush_hour_cascade":
            # Consecutive trains of one line, knock-on growth from a
            # shared mid-route stop.
            count = min(len(route.trains), rng.randint(2, max_trains_per_event))
            first = rng.randrange(len(route.trains) - count + 1)
            trains = route.trains[first : first + count]
            stop = rng.randrange(route.num_legs)
            base = rng.randint(2, 8)
            delays = tuple(
                Delay(
                    train=train,
                    minutes=base + 2 * i,
                    from_stop=min(stop, legs[train] - 1),
                )
                for i, train in enumerate(trains)
            )
        elif shape == "rolling_disruption":
            count = rng.randint(1, max_trains_per_event)
            picked = rng.sample(
                sorted(legs), min(count, len(legs))
            )
            delays = tuple(
                Delay(
                    train=train,
                    minutes=rng.randint(3, 20),
                    from_stop=rng.randrange(legs[train]),
                )
                for train in picked
            )
        elif shape == "line_closure":
            # The whole line held from its first stop.
            minutes = rng.randint(30, 120)
            delays = tuple(
                Delay(train=train, minutes=minutes, from_stop=0)
                for train in route.trains
            )
        else:  # recovering_delay
            count = rng.randint(1, max_trains_per_event)
            picked = rng.sample(sorted(legs), min(count, len(legs)))
            slack = rng.randint(1, 4)
            delays = tuple(
                Delay(
                    train=train,
                    minutes=rng.randint(15, 45),
                    from_stop=rng.randrange(legs[train]),
                )
                for train in picked
            )
        events.append(
            DelayEvent(
                t_offset_s=t_offset, delays=delays, slack_per_leg=slack
            )
        )

    return DelayStream(
        name=name or f"{timetable.name or 'timetable'}-delays-s{seed}",
        seed=seed,
        period=timetable.period,
        num_trains=timetable.num_trains,
        events=tuple(events),
    )
