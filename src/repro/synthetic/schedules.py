"""Daily departure patterns.

Real feeds are not uniform over the day: rush hours multiply the
frequency and operations pause at night.  The paper leans on this
twice — the equal time-slots partition is unbalanced *because* of it
(§3.2), and self-pruning works *because* consecutive departures chase
each other.  The generator reproduces both effects.
"""

from __future__ import annotations

from dataclasses import dataclass
import random


@dataclass(frozen=True, slots=True)
class SchedulePattern:
    """A day's service pattern for one route direction.

    ``base_headway`` applies during normal service; during the rush
    windows the headway divides by ``rush_factor``; no departures occur
    inside the night break.
    """

    base_headway: int = 20
    rush_factor: int = 3
    rush_windows: tuple[tuple[int, int], ...] = ((7 * 60, 9 * 60), (16 * 60, 19 * 60))
    service_start: int = 5 * 60
    service_end: int = 25 * 60  # 01:00 next day, wraps into the night
    jitter: int = 2

    def __post_init__(self) -> None:
        if self.base_headway < 1:
            raise ValueError(f"headway must be ≥ 1, got {self.base_headway}")
        if self.rush_factor < 1:
            raise ValueError(f"rush factor must be ≥ 1, got {self.rush_factor}")
        if not (0 <= self.service_start < self.service_end):
            raise ValueError(
                f"invalid service window [{self.service_start}, {self.service_end})"
            )

    def headway_at(self, tau: int) -> int:
        """Headway in effect at absolute minute ``tau`` (same day)."""
        minute = tau % 1440
        for lo, hi in self.rush_windows:
            if lo <= minute < hi:
                return max(1, self.base_headway // self.rush_factor)
        return self.base_headway


def daily_departures(
    pattern: SchedulePattern,
    rng: random.Random,
    *,
    offset: int = 0,
    period: int = 1440,
) -> list[int]:
    """Generate one day of departure minutes (time points in ``Π``).

    Walks the service window applying the local headway, adds bounded
    jitter, and reduces mod ``period``.  The result is deduplicated and
    sorted; the night break appears as a gap.
    """
    deps: set[int] = set()
    t = pattern.service_start + offset % max(1, pattern.base_headway)
    while t < pattern.service_end:
        jitter = rng.randint(-pattern.jitter, pattern.jitter) if pattern.jitter else 0
        deps.add((t + jitter) % period)
        t += pattern.headway_at(t)
    return sorted(deps)


def density_histogram(departures: list[int], buckets: int = 24) -> list[int]:
    """Departures per bucket of the day — used by tests to assert the
    rush-hour/night-break shape survives generation."""
    counts = [0] * buckets
    for tau in departures:
        counts[(tau * buckets) // 1440 % buckets] += 1
    return counts
