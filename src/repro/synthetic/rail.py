"""Synthetic railway networks (the Germany / Europe analogues).

Hub-and-spoke hierarchy: a backbone of hubs connected by intercity
lines (long legs, moderate frequency) and, per hub, a chain of
satellite stations served by a regional line (short legs, low
frequency).  Both line kinds run bidirectionally.

The defining properties mirrored from the paper's railway inputs are a
*low connections-per-station ratio* and longer legs — the reasons the
Europe instance scales worst in §5.1 (few outgoing connections per
station ⇒ small per-thread subsets ⇒ little self-pruning and biased
thread runtimes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.synthetic.schedules import SchedulePattern, daily_departures
from repro.timetable.builder import TimetableBuilder
from repro.timetable.types import Timetable


@dataclass(frozen=True, slots=True)
class RailNetworkConfig:
    """Parameters of a synthetic railway network."""

    num_hubs: int = 8
    satellites_per_hub: int = 6
    #: Number of intercity lines threaded through the hub backbone.
    num_intercity_lines: int = 6
    #: Hubs visited by one intercity line (inclusive range).
    intercity_stops: tuple[int, int] = (3, 6)
    intercity_headway: tuple[int, int] = (55, 120)
    regional_headway: tuple[int, int] = (35, 90)
    intercity_leg_time: tuple[int, int] = (25, 80)
    regional_leg_time: tuple[int, int] = (8, 25)
    hub_transfer: tuple[int, int] = (4, 8)
    satellite_transfer: tuple[int, int] = (2, 5)
    seed: int = 0
    name: str = "rail"

    def __post_init__(self) -> None:
        if self.num_hubs < 2:
            raise ValueError("need at least 2 hubs")
        if self.satellites_per_hub < 0:
            raise ValueError("satellites_per_hub must be non-negative")
        if self.intercity_stops[0] < 2:
            raise ValueError("intercity lines need at least 2 stops")


def generate_rail_network(config: RailNetworkConfig) -> Timetable:
    """Generate a railway timetable (deterministic in ``config.seed``)."""
    rng = random.Random(config.seed)
    builder = TimetableBuilder(name=config.name)

    hubs = [
        builder.add_station(
            f"{config.name}-hub-{h}",
            transfer_time=rng.randint(*config.hub_transfer),
        )
        for h in range(config.num_hubs)
    ]
    satellites: dict[int, list[int]] = {
        hub: [
            builder.add_station(
                f"{config.name}-hub{h}-sat-{k}",
                transfer_time=rng.randint(*config.satellite_transfer),
            )
            for k in range(config.satellites_per_hub)
        ]
        for h, hub in enumerate(hubs)
    }

    # Ride time is a property of the track segment, not of the line (two
    # lines sharing a station sequence must agree on leg durations or the
    # merged route would violate FIFO).
    leg_time: dict[tuple[int, int], int] = {}

    def leg_minutes(a: int, b: int, leg_range: tuple[int, int]) -> int:
        key = (min(a, b), max(a, b))
        if key not in leg_time:
            leg_time[key] = rng.randint(*leg_range)
        return leg_time[key]

    def add_line(
        stops: list[int],
        headway_range: tuple[int, int],
        leg_range: tuple[int, int],
        rush_factor: int,
    ) -> None:
        if len(stops) < 2:
            return
        legs = [
            leg_minutes(stops[k], stops[k + 1], leg_range)
            for k in range(len(stops) - 1)
        ]
        pattern = SchedulePattern(
            base_headway=rng.randint(*headway_range),
            rush_factor=rush_factor,
            jitter=3,
        )
        for seq, seq_legs in ((stops, legs), (stops[::-1], legs[::-1])):
            offset = rng.randint(0, pattern.base_headway)
            for dep in daily_departures(pattern, rng, offset=offset):
                t = dep
                trip = [(seq[0], t)]
                for k, leg in enumerate(seq_legs):
                    t += leg
                    trip.append((seq[k + 1], t))
                builder.add_trip(trip)

    # Backbone ring so the hub graph is always connected.
    ring = hubs + [hubs[0]]
    for a, b in zip(ring, ring[1:]):
        add_line([a, b], config.intercity_headway, config.intercity_leg_time, 2)

    # Long intercity lines across the backbone.
    for _ in range(config.num_intercity_lines):
        length = rng.randint(*config.intercity_stops)
        length = min(length, len(hubs))
        stops = rng.sample(hubs, length)
        add_line(stops, config.intercity_headway, config.intercity_leg_time, 2)

    # Regional chains: hub → sat1 → sat2 → ...
    for hub, sats in satellites.items():
        if sats:
            add_line(
                [hub] + sats,
                config.regional_headway,
                config.regional_leg_time,
                2,
            )

    return builder.build()
