"""Named instances mirroring the paper's five inputs (DESIGN.md §3).

Paper inputs and their shapes:

================  ========  ==============  ==================
input             stations  connections      connections/station
================  ========  ==============  ==================
Oahu                 3 918      1 408 559      ≈ 360  (dense bus)
Los Angeles         15 792      5 023 877      ≈ 318  (dense bus)
Washington D.C.     10 764      3 387 987      ≈ 315  (dense bus)
Germany              6 822        554 996      ≈  81  (rail)
Europe              30 517      1 775 533      ≈  58  (sparse rail)
================  ========  ==============  ==================

Scaled instances keep the *ratio contrast* (bus ≫ rail) and relative
size ordering at pure-Python-friendly node counts.  The ``scale`` knob:

* ``tiny``  — seconds per experiment; used by the test suite;
* ``small`` — default for benchmarks (minutes for the full suite);
* ``medium`` — closer to paper ratios; for manual runs.
"""

from __future__ import annotations



from repro.synthetic.bus import BusNetworkConfig, generate_bus_network
from repro.synthetic.rail import RailNetworkConfig, generate_rail_network
from repro.timetable.types import Timetable

INSTANCE_NAMES = ("oahu", "losangeles", "washington", "germany", "europe")

#: Bus shapes are *corridor-like*: long routes and few crossings, so the
#: station graph is chain-heavy (most stations have degree ≤ 2) like real
#: stop sequences along roads — the property that lets small transfer-
#: station fractions separate the network (paper §4/Table 2).
_BUS_BASE = {
    # name: (width, height, routes, min_len, max_len, headway_range)
    "oahu": (8, 6, 10, 5, 14, (9, 22)),
    "losangeles": (13, 9, 18, 6, 22, (10, 24)),
    "washington": (11, 8, 14, 6, 19, (10, 23)),
}

_RAIL_BASE = {
    # name: (hubs, satellites, intercity lines)
    "germany": (7, 5, 6),
    "europe": (12, 6, 10),
}

_SCALE_FACTORS = {"tiny": 0.55, "small": 1.0, "medium": 1.8}


def instance_config(
    name: str, scale: str = "small", seed: int = 0
) -> BusNetworkConfig | RailNetworkConfig:
    """Configuration for a named instance at a given scale."""
    if scale not in _SCALE_FACTORS:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(_SCALE_FACTORS)}"
        )
    factor = _SCALE_FACTORS[scale]
    if name in _BUS_BASE:
        width, height, routes, min_len, max_len, headway = _BUS_BASE[name]
        return BusNetworkConfig(
            width=max(3, round(width * factor)),
            height=max(3, round(height * factor)),
            num_routes=max(4, round(routes * factor)),
            min_route_length=max(2, round(min_len * factor)),
            max_route_length=max(4, round(max_len * factor)),
            headway_range=headway,
            seed=seed,
            name=name,
        )
    if name in _RAIL_BASE:
        hubs, satellites, lines = _RAIL_BASE[name]
        return RailNetworkConfig(
            num_hubs=max(3, round(hubs * factor)),
            satellites_per_hub=max(2, round(satellites * factor)),
            num_intercity_lines=max(2, round(lines * factor)),
            seed=seed,
            name=name,
        )
    raise ValueError(
        f"unknown instance {name!r}; choose from {INSTANCE_NAMES}"
    )


def make_instance(name: str, scale: str = "small", seed: int = 0) -> Timetable:
    """Generate a named instance (deterministic in ``seed``)."""
    config = instance_config(name, scale, seed)
    if isinstance(config, BusNetworkConfig):
        return generate_bus_network(config)
    return generate_rail_network(config)


def is_rail(name: str) -> bool:
    """True for railway-shaped instances (low connections/station)."""
    return name in _RAIL_BASE
