"""Delay-stream operations: incremental replanning and live swap rate.

Two measurements on **washington** — the medium synthetic city, dense
enough that a full rebuild visibly hurts — folded into one
``delay_stream`` record (shape pinned by
:data:`repro.benchops.RECORD_SHAPES`):

* **Replan speedup** — the tentpole's number.  Small live batches
  (≤5 trains: rush-hour cascades and rolling disruptions from
  :func:`repro.synthetic.delays.generate_delay_stream`) applied to a
  prepared service twice: ``mode="full"`` (cold rebuild of graph +
  packed arrays) vs ``mode="incremental"`` (patch only the touched
  travel-time functions, :mod:`repro.graph.td_patch`).  Both yield
  bitwise-identical datasets (``tests/streams``); the bench asserts
  the delta path is worth having: **≥ 3× median speedup**.

* **Sustained swap rate under closed-loop load** — the operational
  half.  A real ``TransitServer`` over TCP serves closed-loop query
  threads while the replay harness (:mod:`repro.streams.replay`)
  posts a zero-offset stream — each commit acknowledged before the
  next is sent, i.e. the swap path itself is driven closed-loop.
  Reported: committed swaps/minute, query throughput alongside, and
  the contract check (zero failed requests) that the fleet CI smoke
  also enforces.

The distance table is off here: delays must propagate into *serving*
within tens of milliseconds, and the production answer for that
regime is the incremental path over graph + arrays (a table rebuild
is a prepare-time cost either way — ``bench_table2`` owns it).
"""

from __future__ import annotations

import statistics
import time

from repro.analysis.formatting import format_table
from repro.client import HttpBackend, RetryPolicy
from repro.server import DatasetRegistry, ServerMetrics
from repro.service import ServiceConfig, TransitService
from repro.streams import ReplayConfig, replay_stream
from repro.synthetic.delays import generate_delay_stream
from repro.synthetic.instances import make_instance

from tests.server.harness import ServerHarness

INSTANCE = "washington"
#: ≤5-train live batches (the acceptance bar's batch size).
MAX_TRAINS = 5
BATCH_SHAPES = ("rush_hour_cascade", "rolling_disruption")
#: Replan pairs timed per scale.
NUM_BATCHES = {"tiny": 4, "small": 6, "medium": 8}
#: Streamed commits driven through the live server per scale.
STREAM_EVENTS = {"tiny": 10, "small": 20, "medium": 30}
QUERY_THREADS = 4
SERVER_WORKERS = 4
#: Acceptance floor: median full/incremental replan time ratio.
MIN_REPLAN_SPEEDUP = 3.0

CONFIG = ServiceConfig(kernel="flat", num_threads=4)


def _time_replans(service, stream):
    full_ms, incremental_ms = [], []
    for event in stream.events:
        delays = list(event.delays)
        t0 = time.perf_counter()
        service.apply_delays(delays, slack_per_leg=event.slack_per_leg)
        full_ms.append((time.perf_counter() - t0) * 1000)
        t0 = time.perf_counter()
        replanned = service.apply_delays(
            delays, slack_per_leg=event.slack_per_leg, mode="incremental"
        )
        incremental_ms.append((time.perf_counter() - t0) * 1000)
        assert replanned.prepare_stats.incremental
    return full_ms, incremental_ms


def test_delay_stream_ops(report, benchops, scale):
    timetable = make_instance(INSTANCE, scale)
    service = TransitService(timetable, CONFIG)

    # -- replan speedup -------------------------------------------------
    batches = generate_delay_stream(
        timetable,
        seed=11,
        num_events=NUM_BATCHES[scale],
        duration_s=0.0,
        shapes=BATCH_SHAPES,
        max_trains_per_event=MAX_TRAINS,
    )
    # Warm-up pair: lazy kernel mirrors out of the measurement.
    _time_replans(service, generate_delay_stream(
        timetable, seed=12, num_events=1, duration_s=0.0,
        shapes=BATCH_SHAPES, max_trains_per_event=MAX_TRAINS,
    ))
    full_ms, incremental_ms = _time_replans(service, batches)
    full_median = statistics.median(full_ms)
    incremental_median = statistics.median(incremental_ms)
    speedup = full_median / incremental_median

    # -- sustained swaps under closed-loop load -------------------------
    stream = generate_delay_stream(
        timetable,
        seed=13,
        num_events=STREAM_EVENTS[scale],
        duration_s=0.0,  # zero offsets: the poster runs closed-loop
        shapes=BATCH_SHAPES,
        max_trains_per_event=MAX_TRAINS,
    )
    registry = DatasetRegistry.from_services({"bench": service})
    harness = ServerHarness(
        registry,
        workers=SERVER_WORKERS,
        max_inflight=QUERY_THREADS * 4 + 4,
        metrics=ServerMetrics(),
    )
    try:
        replay = replay_stream(
            stream,
            lambda: HttpBackend(
                f"http://127.0.0.1:{harness.port}/bench",
                timeout=120,
                pool_size=1,
                retry=RetryPolicy(retries=0),
            ),
            ReplayConfig(
                query_threads=QUERY_THREADS,
                speed=1000.0,
                replan="incremental",
            ),
        ).check()
    finally:
        harness.close()
    metrics = replay.metrics
    swaps_per_minute = metrics["replans_per_second"] * 60.0

    table = format_table(
        ["measure", "value"],
        [
            ["full replan (median)", f"{full_median:.1f} ms"],
            ["incremental replan (median)", f"{incremental_median:.1f} ms"],
            ["replan speedup", f"{speedup:.1f}x"],
            ["streamed commits", str(stream.num_events)],
            ["swaps/minute (closed loop)", f"{swaps_per_minute:.0f}"],
            ["query throughput alongside", f"{metrics['queries_per_second']:.0f} qps"],
            ["swap ack p-max", f"{metrics['swap_seconds_max'] * 1000:.1f} ms"],
            ["failed requests", str(replay.failed_requests)],
        ],
    )
    report.add(
        "delay_stream",
        f"[scale={scale}, {INSTANCE}, ≤{MAX_TRAINS}-train batches, "
        f"{QUERY_THREADS} query threads]\n{table}\n",
    )
    benchops.add(
        "delay_stream",
        {
            "replan_full_ms": full_median,
            "replan_incremental_ms": incremental_median,
            "replan_speedup": speedup,
            "swaps_per_minute": swaps_per_minute,
            "replay_qps": metrics["queries_per_second"],
            "failed_requests": float(replay.failed_requests),
        },
        config={
            "instance": INSTANCE,
            "max_trains_per_event": MAX_TRAINS,
            "shapes": list(BATCH_SHAPES),
            "num_batches": NUM_BATCHES[scale],
            "stream_events": STREAM_EVENTS[scale],
            "query_threads": QUERY_THREADS,
            "server_workers": SERVER_WORKERS,
            "kernel": CONFIG.kernel,
        },
    )

    assert replay.failed_requests == 0
    assert metrics["delay_posts_total"] == stream.num_events
    assert speedup >= MIN_REPLAN_SPEEDUP, (
        f"incremental replanning bought only {speedup:.1f}x over the "
        f"full rebuild on {INSTANCE} (floor {MIN_REPLAN_SPEEDUP:.1f}x; "
        f"full {full_median:.1f} ms, incremental {incremental_median:.1f} ms)"
    )
