"""Table 1 — one-to-all profile queries (paper §5.1).

CS (parallel self-pruning connection-setting) on 1, 2, 4 and 8
simulated cores vs the label-correcting baseline (LC), on all five
instances — and, new to this repo, on both execution kernels:
``python`` (the reference object-graph SPCS, the seed implementation)
and ``flat`` (the packed flat-array kernel of
:mod:`repro.core.spcs_kernel`).  Reported per cell: mean settled
connections (summed over cores), mean simulated time, and speed-up over
the CS[python] 1-core run — so the kernel's speedup is measured, not
asserted (the acceptance bar is ≥3× one-to-all on the default
instances).

Expected shape (paper): CS settles ~6–15× fewer connections than LC and
wins wall-clock by a smaller factor; settled counts grow mildly with p
(cross-thread self-pruning is lost), worst on the sparse rail instance.
The two kernels settle slightly different counts on exact arrival ties
(queue tie-breaking) while producing identical profiles.
"""

from __future__ import annotations

import time
from statistics import fmean

import pytest

from repro.analysis.formatting import format_table
from repro.baselines.label_correcting import label_correcting_profile
from repro.core.parallel import KERNELS
from repro.service import ProfileRequest, ServiceConfig, TransitService
from repro.synthetic.workloads import random_sources

from benchmarks.conftest import ALL_INSTANCES, CORE_COUNTS

NUM_QUERIES = 3

_cells: dict[tuple[str, object, object], dict] = {}

# One prepared TransitService per (instance, kernel): packing and
# graph build are paid once outside the timed region, as in production.
_services: dict[tuple[str, str], TransitService] = {}


def _service(graphs, instance: str, kernel: str) -> TransitService:
    key = (instance, kernel)
    service = _services.get(key)
    if service is None:
        service = TransitService.from_graph(
            graphs.graph(instance), ServiceConfig(kernel=kernel)
        )
        _services[key] = service
    return service


def _sources(graph):
    return random_sources(graph.timetable, NUM_QUERIES, seed=1)


@pytest.mark.parametrize("instance", ALL_INSTANCES)
@pytest.mark.parametrize("cores", CORE_COUNTS)
@pytest.mark.parametrize("kernel", KERNELS)
def test_cs_one_to_all(benchmark, graphs, report, benchops, instance, cores, kernel):
    service = _service(graphs, instance, kernel)
    sources = _sources(service.graph)

    def run():
        return [
            service.profile(ProfileRequest(s, num_threads=cores))
            for s in sources
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    settled = fmean(r.stats.settled_connections for r in results)
    simulated = fmean(r.stats.simulated_seconds for r in results)
    _cells[(instance, kernel, cores)] = {"settled": settled, "time": simulated}
    _maybe_emit(report, benchops, instance)


@pytest.mark.parametrize("instance", ALL_INSTANCES)
def test_lc_one_to_all(benchmark, graphs, report, benchops, instance):
    graph = graphs.graph(instance)
    sources = _sources(graph)

    def run():
        out = []
        for s in sources:
            t0 = time.perf_counter()
            lc = label_correcting_profile(graph, s, vectorized=False)
            out.append((lc.settled_connections, time.perf_counter() - t0))
        return out

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    _cells[(instance, "LC", None)] = {
        "settled": fmean(s for s, _ in stats),
        "time": fmean(t for _, t in stats),
    }
    _maybe_emit(report, benchops, instance)


def _maybe_emit(report, benchops, instance):
    """Emit the instance's Table 1 block once all its cells are in."""
    keys = [
        (instance, kernel, p) for kernel in KERNELS for p in CORE_COUNTS
    ] + [(instance, "LC", None)]
    if not all(k in _cells for k in keys):
        return
    # Speed-ups are relative to the seed implementation: CS[python], 1 core.
    base_time = _cells[(instance, "python", 1)]["time"]
    rows = []
    for kernel in KERNELS:
        for p in CORE_COUNTS:
            cell = _cells[(instance, kernel, p)]
            rows.append(
                [
                    f"CS[{kernel}]",
                    p,
                    f"{cell['settled']:,.0f}",
                    f"{cell['time'] * 1000:.1f}",
                    f"{base_time / cell['time']:.1f}" if cell["time"] else "inf",
                ]
            )
    lc = _cells[(instance, "LC", None)]
    rows.append(["LC", 1, f"{lc['settled']:,.0f}", f"{lc['time'] * 1000:.1f}", "—"])
    table = format_table(
        ["algo", "p", "settled conns", "time [ms]", "spd-up"], rows
    )
    report.add("table1_one_to_all", f"[{instance}]\n{table}\n")

    # One record per instance: every timed cell plus the headline
    # kernel speed-up the acceptance bar quotes (python p=1 / flat p=1)
    # and the CS-vs-LC work ratio (settled counts are deterministic).
    metrics = {
        f"cs_{kernel}_p{p}_ms": _cells[(instance, kernel, p)]["time"] * 1000
        for kernel in KERNELS
        for p in CORE_COUNTS
    }
    metrics["lc_ms"] = lc["time"] * 1000
    flat_time = _cells[(instance, "flat", 1)]["time"]
    if flat_time:
        metrics["kernel_speedup"] = base_time / flat_time
    cs_settled = _cells[(instance, "python", 1)]["settled"]
    if cs_settled:
        metrics["lc_vs_cs_settled_ratio"] = lc["settled"] / cs_settled
    benchops.add(
        "table1_one_to_all",
        metrics,
        config={
            "instance": instance,
            "num_queries": NUM_QUERIES,
            "cores": list(CORE_COUNTS),
            "kernels": list(KERNELS),
        },
    )
