"""A-stop — ablation: stopping criterion (paper §5.2, "the stopping
criterion accelerates queries by approximately 20 %").

Station-to-station queries without any distance table, stopping
criterion on vs off.
"""

from __future__ import annotations

from statistics import fmean

import pytest

from repro.analysis.formatting import format_table
from repro.service import ServiceConfig, TransitService
from repro.synthetic.workloads import random_station_pairs

NUM_QUERIES = 5
NUM_CORES = 8
INSTANCES = ("oahu", "losangeles")

_rows: list[list] = []


_times: dict[tuple[str, bool], float] = {}


@pytest.mark.parametrize("instance", INSTANCES)
@pytest.mark.parametrize("stopping", (True, False), ids=["stop", "nostop"])
def test_stopping_criterion(benchmark, graphs, report, benchops, instance, stopping):
    service = TransitService.from_graph(
        graphs.graph(instance),
        ServiceConfig(
            kernel="python", num_threads=NUM_CORES, stopping=stopping
        ),
    )
    pairs = random_station_pairs(service.timetable, NUM_QUERIES, seed=7)

    def run():
        return [service.journey(s, t) for s, t in pairs]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    simulated = fmean(r.stats.simulated_seconds for r in results)
    _times[(instance, stopping)] = simulated
    _rows.append(
        [
            instance,
            "on" if stopping else "off",
            f"{fmean(r.stats.settled_connections for r in results):,.0f}",
            f"{simulated * 1000:.1f}",
        ]
    )
    if len(_rows) == len(INSTANCES) * 2:
        table = format_table(
            ["instance", "stopping", "settled conns", "time [ms]"], _rows
        )
        report.add("ablation_stopping", table + "\n")

        # The paper's "~20 % faster" claim, per instance: both wall
        # times plus the on/off speed-up.
        metrics: dict[str, float] = {}
        for inst in INSTANCES:
            on, off = _times[(inst, True)], _times[(inst, False)]
            metrics[f"{inst}_stop_ms"] = on * 1000
            metrics[f"{inst}_nostop_ms"] = off * 1000
            if on:
                metrics[f"{inst}_stopping_speedup"] = off / on
        benchops.add(
            "ablation_stopping",
            metrics,
            config={
                "instances": list(INSTANCES),
                "num_queries": NUM_QUERIES,
                "cores": NUM_CORES,
            },
        )
