"""Cold prepare vs warm start from the artifact store.

The serving claim behind :mod:`repro.store`: a process that owns a
store warm-starts in a fraction of the cold prepare cost, because it
loads (mmap + hydrate) instead of building (graph build, packing,
station graph, transfer selection, distance table).  Measured per
instance:

* **cold** — ``TransitService(timetable, config)`` on an in-memory
  timetable (the prepare pipeline alone);
* **save** — serializing the prepared dataset;
* **warm** — ``TransitService.load(store)`` (best of three: the first
  load pays page-cache warming for everyone after it).

Asserted (the PR's acceptance bar): on the *largest* synthetic
instance, with the production config (flat kernel + distance table),
warm start is at least 5× faster than cold prepare at the default
benchmark scale.  At ``tiny`` scale — CI smoke territory, where every
stage costs ~10 ms and constant overheads dominate — the bar relaxes
to 2.5×.  A sanity check also pins one journey bitwise-equal between
the cold and warm service, so the speed-up is never bought with a
wrong answer.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.formatting import format_table
from repro.service import ServiceConfig, TransitService
from repro.synthetic.instances import make_instance

#: Smallest and largest bus instance plus the large rail instance —
#: the shapes bracket the packed-buffer and table sizes.
INSTANCES = ("oahu", "losangeles", "germany")
#: The instance the ≥5× assertion runs on (largest: most connections).
LARGEST = "losangeles"

CONFIG = ServiceConfig(
    kernel="flat",
    num_threads=4,
    use_distance_table=True,
    transfer_fraction=0.05,
)

WARM_ROUNDS = 3
MIN_SPEEDUP = {"tiny": 2.5, "small": 5.0, "medium": 5.0}


def _bench_instance(instance: str, scale: str, store_root) -> dict:
    timetable = make_instance(instance, scale)
    t0 = time.perf_counter()
    cold_service = TransitService(timetable, CONFIG)
    cold_seconds = time.perf_counter() - t0

    store = store_root / instance
    t0 = time.perf_counter()
    cold_service.save(store)
    save_seconds = time.perf_counter() - t0

    warm_seconds = float("inf")
    warm_service = None
    for _ in range(WARM_ROUNDS):
        t0 = time.perf_counter()
        warm_service = TransitService.load(store)
        warm_seconds = min(warm_seconds, time.perf_counter() - t0)

    # Never trade correctness for the speed-up: one journey, bitwise.
    cold_answer = cold_service.journey(0, timetable.num_stations // 2)
    warm_answer = warm_service.journey(0, timetable.num_stations // 2)
    assert np.array_equal(cold_answer.profile.deps, warm_answer.profile.deps)
    assert np.array_equal(cold_answer.profile.arrs, warm_answer.profile.arrs)

    return {
        "instance": instance,
        "connections": timetable.num_connections,
        "cold": cold_seconds,
        "save": save_seconds,
        "warm": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
    }


def test_warm_start_speedup(report, benchops, scale, tmp_path_factory):
    store_root = tmp_path_factory.mktemp("stores")
    rows = [
        _bench_instance(instance, scale, store_root)
        for instance in INSTANCES
    ]
    table = format_table(
        ["instance", "conns", "cold [ms]", "save [ms]", "warm [ms]", "spd-up"],
        [
            [
                r["instance"],
                f"{r['connections']:,}",
                f"{r['cold'] * 1000:.1f}",
                f"{r['save'] * 1000:.1f}",
                f"{r['warm'] * 1000:.1f}",
                f"{r['speedup']:.1f}x",
            ]
            for r in rows
        ],
    )
    report.add(
        "store_warmstart",
        f"[scale={scale}, config=flat+table(5%)]\n{table}\n",
    )
    metrics: dict[str, float] = {}
    for r in rows:
        metrics[f"{r['instance']}_cold_ms"] = r["cold"] * 1000
        metrics[f"{r['instance']}_warm_ms"] = r["warm"] * 1000
        metrics[f"{r['instance']}_warmstart_speedup"] = r["speedup"]
    benchops.add(
        "store_warmstart",
        metrics,
        config={
            "instances": list(INSTANCES),
            "largest": LARGEST,
            "warm_rounds": WARM_ROUNDS,
            "kernel": CONFIG.kernel,
            "transfer_fraction": CONFIG.transfer_fraction,
        },
    )

    largest = next(r for r in rows if r["instance"] == LARGEST)
    min_speedup = MIN_SPEEDUP[scale]
    assert largest["warm"] * min_speedup <= largest["cold"], (
        f"warm start regressed on {LARGEST}: {largest['warm'] * 1000:.1f} ms "
        f"vs cold prepare {largest['cold'] * 1000:.1f} ms "
        f"({largest['speedup']:.1f}x < {min_speedup}x at scale={scale})"
    )
