"""F-scal — speed-up vs core count (paper §5.1 in-text series).

One bus instance (losangeles) and one rail instance (europe), p = 1..8.
The series reproduces the paper's two claims:

* speed-up ≈ 1.9 (p=2), ≈ 3 (p=4), ≈ 4.5–5 (p=8) on dense bus networks;
* the rail network scales worse because each thread holds few outgoing
  connections, so cross-thread self-pruning loss is proportionally
  larger — visible as faster settled-work growth.
"""

from __future__ import annotations

from statistics import fmean

import pytest

from repro.analysis.formatting import format_table
from repro.service import ProfileRequest, ServiceConfig, TransitService
from repro.synthetic.workloads import random_sources

NUM_QUERIES = 3
SERIES_INSTANCES = ("losangeles", "europe")
SERIES_CORES = tuple(range(1, 9))

_points: dict[str, dict[int, dict]] = {}
_services: dict[str, TransitService] = {}


@pytest.mark.parametrize("instance", SERIES_INSTANCES)
@pytest.mark.parametrize("cores", SERIES_CORES)
def test_scalability_point(benchmark, graphs, report, benchops, instance, cores):
    service = _services.get(instance)
    if service is None:
        # python kernel: the series reproduces the paper's
        # reference-implementation scaling claims.
        service = TransitService.from_graph(
            graphs.graph(instance), ServiceConfig(kernel="python")
        )
        _services[instance] = service
    sources = random_sources(service.timetable, NUM_QUERIES, seed=3)

    def run():
        return [
            service.profile(ProfileRequest(s, num_threads=cores))
            for s in sources
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    _points.setdefault(instance, {})[cores] = {
        "settled": fmean(r.stats.settled_connections for r in results),
        "time": fmean(r.stats.simulated_seconds for r in results),
    }
    if len(_points[instance]) == len(SERIES_CORES):
        _emit(report, benchops, instance)


def _emit(report, benchops, instance):
    series = _points[instance]
    base = series[1]
    rows = [
        [
            p,
            f"{series[p]['settled']:,.0f}",
            f"{series[p]['settled'] / base['settled']:.2f}",
            f"{series[p]['time'] * 1000:.1f}",
            f"{base['time'] / series[p]['time']:.2f}",
        ]
        for p in SERIES_CORES
    ]
    table = format_table(
        ["p", "settled conns", "settled growth", "time [ms]", "speed-up"],
        rows,
    )
    report.add("fig_scalability", f"[{instance}]\n{table}\n")

    # The paper's two scaling claims as gated numbers: the p=8
    # speed-up over p=1 and the endpoint wall times; settled-work
    # growth is recorded ungated (a shape, not a speed claim).
    top = max(SERIES_CORES)
    metrics = {
        "p1_ms": base["time"] * 1000,
        f"p{top}_ms": series[top]["time"] * 1000,
        "settled_growth": series[top]["settled"] / base["settled"]
        if base["settled"]
        else 0.0,
    }
    if series[top]["time"]:
        metrics["scaling_speedup"] = base["time"] / series[top]["time"]
    benchops.add(
        "fig_scalability",
        metrics,
        config={
            "instance": instance,
            "num_queries": NUM_QUERIES,
            "cores": list(SERIES_CORES),
        },
    )
