"""Table 2 — station-to-station queries with distance-table pruning
(paper §5.2).

For each instance: the stopping-criterion-only baseline (0.0 %), a sweep
of contraction-selected transfer-station fractions, and the ``deg > 2``
rule.  Reported per row: number of transfer stations, preprocessing
time, table size, mean settled connections, mean simulated query time,
and the speed-up over the 0.0 % row — the paper's Table 2 columns.

Expected shape (paper): the stopping criterion alone ≈ 20 % faster than
plain one-to-all; tables pay off up to ≈ 5 % transfer stations, then
flatten while preprocessing cost keeps growing.

Fractions adapt to instance size: a fraction selecting no station is
skipped (the paper's 1 % rows on our scaled-down networks).
"""

from __future__ import annotations

from statistics import fmean

import pytest

from repro.analysis.formatting import format_table
from repro.service import ServiceConfig, TransitService
from repro.synthetic.workloads import random_station_pairs

from benchmarks.conftest import ALL_INSTANCES

NUM_QUERIES = 5
NUM_CORES = 8
FRACTIONS = (0.0, 0.01, 0.025, 0.05, 0.10, 0.20, 0.30)

_rows: dict[str, list] = {}
_SELECTIONS = [f"{f * 100:.1f}%" for f in FRACTIONS] + ["deg > 2"]


def _run_row(graph, selection, pairs):
    base = ServiceConfig(num_threads=NUM_CORES, kernel="python")
    if selection == "0.0%":
        config = base
    elif selection == "deg > 2":
        config = base.with_overrides(
            use_distance_table=True,
            transfer_selection="degree",
            min_degree=2,
        )
    else:
        config = base.with_overrides(
            use_distance_table=True,
            transfer_selection="contraction",
            transfer_fraction=float(selection.rstrip("%")) / 100.0,
        )
    service = TransitService.from_graph(graph, config)
    table = service.table

    if selection != "0.0%" and table is None:
        return None  # fraction too small for this scaled-down instance

    prepro, mib = (0.0, 0.0) if table is None else (
        table.build_seconds, table.size_mib()
    )
    settled, times = [], []
    for s, t in pairs:
        result = service.journey(s, t)
        settled.append(result.stats.settled_connections)
        times.append(result.stats.simulated_seconds)
    return {
        "selection": selection,
        "num_transfer": service.prepare_stats.num_transfer_stations,
        "prepro": prepro,
        "mib": mib,
        "settled": fmean(settled),
        "time": fmean(times),
    }


@pytest.mark.parametrize("instance", ALL_INSTANCES)
@pytest.mark.parametrize("selection", _SELECTIONS)
def test_station_to_station(benchmark, graphs, report, benchops, instance, selection):
    graph = graphs.graph(instance)
    pairs = random_station_pairs(graph.timetable, NUM_QUERIES, seed=2)
    row = benchmark.pedantic(
        _run_row, args=(graph, selection, pairs), rounds=1, iterations=1
    )
    _rows.setdefault(instance, []).append(row)
    if len(_rows[instance]) == len(_SELECTIONS):
        _emit(report, benchops, instance)


def _emit(report, benchops, instance):
    rows = [r for r in _rows[instance] if r is not None]
    base_time = next(r["time"] for r in rows if r["selection"] == "0.0%")
    formatted = [
        [
            r["selection"],
            r["num_transfer"],
            f"{r['prepro']:.1f}",
            f"{r['mib']:.2f}",
            f"{r['settled']:,.0f}",
            f"{r['time'] * 1000:.1f}",
            f"{base_time / r['time']:.1f}" if r["time"] else "inf",
        ]
        for r in rows
    ]
    table = format_table(
        [
            "selection",
            "|S_trans|",
            "prepro [s]",
            "space [MiB]",
            "settled conns",
            "time [ms]",
            "spd-up",
        ],
        formatted,
    )
    report.add("table2_distance_tables", f"[{instance}]\n{table}\n")

    # Stopping-criterion baseline vs the best table row: the paper's
    # "tables pay off" claim as two gated times and one speed-up.
    table_rows = [r for r in rows if r["selection"] != "0.0%"]
    metrics = {"stopping_only_ms": base_time * 1000}
    if table_rows:
        best = min(table_rows, key=lambda r: r["time"])
        metrics["best_table_ms"] = best["time"] * 1000
        if best["time"]:
            metrics["best_table_speedup"] = base_time / best["time"]
        metrics["best_table_space_mib"] = best["mib"]
    benchops.add(
        "table2_distance_tables",
        metrics,
        config={
            "instance": instance,
            "num_queries": NUM_QUERIES,
            "cores": NUM_CORES,
            "selections": _SELECTIONS,
        },
    )
