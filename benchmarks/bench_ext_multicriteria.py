"""EXT-mc — the §6 future-work extension: multi-criteria profile search
(arrival time × number of transfers).

Measures the cost of adding the transfer criterion relative to the
single-criterion SPCS, and the effectiveness of the generalized
per-layer self-pruning rule.  Not a paper artifact — an extension bench
recorded for completeness (DESIGN.md experiment index, row EXT-mc).
"""

from __future__ import annotations

from statistics import fmean

import pytest

from repro.analysis.formatting import format_table
from repro.core.multicriteria import mc_profile_search
from repro.core.spcs import spcs_profile_search
from repro.synthetic.workloads import random_sources

NUM_QUERIES = 2
INSTANCE = "germany"
VARIANTS = ("single", "mc-k2", "mc-k4", "mc-k4-noprune")

_rows: dict[str, dict] = {}


def _run(graph, variant, sources):
    if variant == "single":
        runs = [spcs_profile_search(graph, s) for s in sources]
        return {
            "settled": fmean(r.stats.settled_connections for r in runs),
            "pruned": fmean(r.stats.pruned_self for r in runs),
        }
    max_transfers = {"mc-k2": 2, "mc-k4": 4, "mc-k4-noprune": 4}[variant]
    self_pruning = variant != "mc-k4-noprune"
    runs = [
        mc_profile_search(
            graph, s, max_transfers=max_transfers, self_pruning=self_pruning
        )
        for s in sources
    ]
    return {
        "settled": fmean(r.stats.settled for r in runs),
        "pruned": fmean(r.stats.pruned for r in runs),
    }


@pytest.mark.parametrize("variant", VARIANTS)
def test_multicriteria_cost(benchmark, graphs, report, benchops, variant):
    graph = graphs.graph(INSTANCE)
    sources = random_sources(graph.timetable, NUM_QUERIES, seed=8)
    stats = benchmark.pedantic(_run, args=(graph, variant, sources), rounds=1, iterations=1)
    _rows[variant] = {**stats, "time": benchmark.stats["mean"]}
    if len(_rows) == len(VARIANTS):
        rows = [
            [
                v,
                f"{_rows[v]['settled']:,.0f}",
                f"{_rows[v]['pruned']:,.0f}",
                f"{_rows[v]['time'] * 1000:.1f}",
            ]
            for v in VARIANTS
        ]
        table = format_table(
            ["variant", "settled", "dominance-pruned", "time [ms]"], rows
        )
        report.add("ext_multicriteria", f"[{INSTANCE}]\n{table}\n")

        metrics = {
            f"{v.replace('-', '_')}_ms": _rows[v]["time"] * 1000
            for v in VARIANTS
        }
        # Pruning effectiveness: settled work saved by the per-layer
        # rule (deterministic counts, gated exactly).
        if _rows["mc-k4"]["settled"]:
            metrics["mc_prune_work_reduction_speedup"] = (
                _rows["mc-k4-noprune"]["settled"] / _rows["mc-k4"]["settled"]
            )
        benchops.add(
            "ext_multicriteria",
            metrics,
            config={
                "instance": INSTANCE,
                "num_queries": NUM_QUERIES,
                "variants": list(VARIANTS),
            },
        )
