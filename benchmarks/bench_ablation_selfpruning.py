"""A-sp — ablation: self-pruning on/off (paper §3.1 / Table 1 gap).

Disabling Theorem 1's self-pruning makes SPCS settle every reachable
(node, connection) pair, approaching the LC work level — quantifying
how much of the CS-vs-LC gap the pruning rule delivers.
"""

from __future__ import annotations

from statistics import fmean

import pytest

from repro.analysis.formatting import format_table
from repro.core.spcs import spcs_profile_search
from repro.synthetic.workloads import random_sources

NUM_QUERIES = 3
INSTANCES = ("oahu", "germany")

_rows: list[list] = []


_settled: dict[tuple[str, bool], float] = {}


@pytest.mark.parametrize("instance", INSTANCES)
@pytest.mark.parametrize("self_pruning", (True, False), ids=["pruned", "unpruned"])
def test_self_pruning(benchmark, graphs, report, benchops, instance, self_pruning):
    graph = graphs.graph(instance)
    sources = random_sources(graph.timetable, NUM_QUERIES, seed=5)

    def run():
        return [
            spcs_profile_search(graph, s, self_pruning=self_pruning)
            for s in sources
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    settled = fmean(r.stats.settled_connections for r in results)
    pruned = fmean(r.stats.pruned_self for r in results)
    _settled[(instance, self_pruning)] = settled
    _rows.append(
        [instance, "on" if self_pruning else "off", f"{settled:,.0f}", f"{pruned:,.0f}"]
    )
    if len(_rows) == len(INSTANCES) * 2:
        table = format_table(
            ["instance", "self-pruning", "settled conns", "self-pruned"], _rows
        )
        report.add("ablation_selfpruning", table + "\n")

        # Settled counts are deterministic for a fixed seed, so the
        # work-reduction factor (unpruned / pruned settled) gates with
        # zero noise — the tightest regression trap in the suite.
        metrics: dict[str, float] = {}
        for inst in INSTANCES:
            on, off = _settled[(inst, True)], _settled[(inst, False)]
            metrics[f"{inst}_pruned_settled"] = on
            metrics[f"{inst}_unpruned_settled"] = off
            if on:
                metrics[f"{inst}_work_reduction_speedup"] = off / on
        benchops.add(
            "ablation_selfpruning",
            metrics,
            config={"instances": list(INSTANCES), "num_queries": NUM_QUERIES},
        )
