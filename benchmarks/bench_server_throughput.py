"""Closed-loop load test of the query server: micro-batched vs naive.

A fleet of closed-loop clients (each waits for its answer before
sending the next request) hammers one dataset's journey endpoint over
real TCP with persistent connections — each client is an
:class:`repro.client.HttpBackend` with a single pooled keep-alive
connection, i.e. the production SDK path, not a hand-rolled socket
loop.  The same workload runs against two servers that differ in
exactly one knob:

* **naive** — ``batch_window=0``: every request is its own worker-pool
  job (one-query-per-request dispatch);
* **micro** — concurrent journeys for the same dataset group into one
  :class:`~repro.query.batch.BatchQueryEngine` pass per collection
  window (the production default).

The workload is the distance-table serving shape: every pair has both
endpoints in ``S_trans``, so queries classify "table" and answer in
microseconds (both modes still pay full HTTP/JSON per request, which
bounds the measurable gap) — which is the paper's production regime (the table
exists precisely to make interactive queries sub-millisecond) and the
regime where per-request dispatch overhead, the thing micro-batching
removes, is the dominant cost.  Heavy uncached searches shrink the
*relative* gap toward the GIL-bound compute floor (micro still wins
there — measurably but by a few percent, too little to assert through
shared-runner noise).

Reported per mode: QPS plus client-side p50/p99 latency.  Asserted
(the PR's acceptance bar): micro-batched dispatch yields measurably
higher throughput than naive one-job-per-request dispatch.

Answers are not checked here (the e2e suite pins parity); the result
cache is disabled so both modes do identical work per request.
"""

from __future__ import annotations

import os
import random
import statistics
import threading
import time

from repro.analysis.formatting import format_table
from repro.client import HttpBackend, RetryPolicy
from repro.server import DatasetRegistry, ServerMetrics
from repro.service import ServiceConfig, TransitService
from repro.synthetic.instances import make_instance

from tests.fleet.harness import FleetHarness
from tests.server.harness import ServerHarness

INSTANCE = "oahu"
#: Closed-loop clients (each holds one keep-alive connection).
CLIENTS = 8
#: Requests per client per mode.
REQUESTS = {"tiny": 40, "small": 60, "medium": 80}
#: Worker threads per server.
WORKERS = 8
#: micro mode's collection window / size cap.
BATCH_WINDOW = 0.003
BATCH_MAX = 8
#: Acceptance floor: micro QPS must exceed naive QPS by this factor.
MIN_ADVANTAGE = 1.05

#: Distance table over half the stations: the benched pairs all
#: classify "table".  Result cache off: both modes pay every lookup,
#: so the measured gap is dispatch, not cache luck.
CONFIG = ServiceConfig(
    num_threads=1,
    result_cache_size=0,
    use_distance_table=True,
    transfer_fraction=0.5,
)


def _journey_call(backend: HttpBackend, item) -> None:
    source, target = item
    answer = backend.journey(source, target)
    assert answer.source == source and answer.target == target


def _drive(
    harness: ServerHarness, pairs, requests_per_client, *, call=_journey_call
) -> dict:
    """Run the closed loop; returns QPS + latency percentiles.

    ``call(backend, item)`` issues one request for one workload item
    (default: a journey for a ``(source, target)`` pair); the latency
    sample wraps exactly that one exchange.
    """
    latencies: list[list[float]] = [[] for _ in range(CLIENTS)]
    barrier = threading.Barrier(CLIENTS + 1)

    def client(cid: int) -> None:
        # One backend per closed-loop client: a single persistent
        # keep-alive connection, retries off so every latency sample
        # is one exchange (max_inflight is sized to never 503 here).
        backend = HttpBackend(
            f"http://127.0.0.1:{harness.port}/bench",
            timeout=60,
            pool_size=1,
            retry=RetryPolicy(retries=0),
        )
        try:
            barrier.wait()
            for i in range(requests_per_client):
                item = pairs[(cid * requests_per_client + i) % len(pairs)]
                t0 = time.perf_counter()
                call(backend, item)
                latencies[cid].append(time.perf_counter() - t0)
        finally:
            backend.close()

    threads = [
        threading.Thread(target=client, args=(cid,)) for cid in range(CLIENTS)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0

    flat = sorted(lat for per_client in latencies for lat in per_client)
    total = len(flat)
    return {
        "requests": total,
        "wall": wall,
        "qps": total / wall,
        "p50_ms": statistics.quantiles(flat, n=100)[49] * 1000,
        "p99_ms": statistics.quantiles(flat, n=100)[98] * 1000,
    }


def _bench_mode(service, pairs, requests_per_client, *, batch_window) -> dict:
    registry = DatasetRegistry.from_services({"bench": service})
    harness = ServerHarness(
        registry,
        workers=WORKERS,
        max_inflight=CLIENTS * 4,
        batch_window=batch_window,
        batch_max=BATCH_MAX,
        metrics=ServerMetrics(),
    )
    try:
        # Warm-up: JIT-free Python, but the first requests pay lazy
        # engine/kernel-mirror setup; keep them out of the measurement.
        _drive(harness, pairs[:CLIENTS], 2)
        row = _drive(harness, pairs, requests_per_client)
        micro = harness.server.metrics.snapshot()["micro_batching"]
        row["batches"] = micro["batches_total"]
        row["mean_batch"] = micro["mean_batch_size"] or 1.0
        return row
    finally:
        harness.close()


def test_micro_batching_beats_naive_dispatch(report, benchops, scale):
    import random

    timetable = make_instance(INSTANCE, scale)
    requests_per_client = REQUESTS[scale]
    service = TransitService(timetable, CONFIG)
    transfer = [int(s) for s in service.table.transfer_stations]
    rng = random.Random(3)
    pairs = [
        tuple(rng.sample(transfer, 2))
        for _ in range(CLIENTS * requests_per_client)
    ]

    naive = _bench_mode(
        service, pairs, requests_per_client, batch_window=0.0
    )
    micro = _bench_mode(
        service, pairs, requests_per_client, batch_window=BATCH_WINDOW
    )

    rows = [
        ("naive", naive),
        (f"micro ({BATCH_WINDOW * 1000:g} ms/{BATCH_MAX})", micro),
    ]
    table = format_table(
        ["dispatch", "reqs", "QPS", "p50 [ms]", "p99 [ms]", "mean batch"],
        [
            [
                name,
                str(row["requests"]),
                f"{row['qps']:.0f}",
                f"{row['p50_ms']:.1f}",
                f"{row['p99_ms']:.1f}",
                f"{row.get('mean_batch', 1.0):.2f}",
            ]
            for name, row in rows
        ],
    )
    report.add(
        "server_throughput",
        f"[scale={scale}, {CLIENTS} closed-loop clients, "
        f"{WORKERS} workers, {INSTANCE}]\n{table}\n",
    )
    benchops.add(
        "server_throughput",
        {
            "naive_qps": naive["qps"],
            "micro_qps": micro["qps"],
            "micro_advantage_speedup": micro["qps"] / naive["qps"],
            "naive_p50_ms": naive["p50_ms"],
            "naive_p99_ms": naive["p99_ms"],
            "micro_p50_ms": micro["p50_ms"],
            "micro_p99_ms": micro["p99_ms"],
            "micro_mean_batch": micro["mean_batch"],
        },
        config={
            "instance": INSTANCE,
            "clients": CLIENTS,
            "requests_per_client": requests_per_client,
            "workers": WORKERS,
            "batch_window": BATCH_WINDOW,
            "batch_max": BATCH_MAX,
        },
    )

    # Micro-batching must actually group under this concurrency...
    assert micro["mean_batch"] > 1.0, (
        f"no grouping happened (mean batch {micro['mean_batch']:.2f}) — "
        f"the comparison below would measure nothing"
    )
    # ...and grouping must buy throughput over one-job-per-request.
    assert micro["qps"] > naive["qps"] * MIN_ADVANTAGE, (
        f"micro-batched dispatch did not beat naive dispatch: "
        f"{micro['qps']:.0f} vs {naive['qps']:.0f} QPS "
        f"(need >{MIN_ADVANTAGE:.2f}x)"
    )


# ---------------------------------------------------------------------------
# Query zoo: the three promoted shapes under closed-loop serving load.
# ---------------------------------------------------------------------------

#: Requests per client per zoo shape (each shape pays a full §6 search
#: or two chained profile queries per request — heavier than the
#: table-classified journeys above).
ZOO_REQUESTS = {"tiny": 20, "small": 30, "medium": 40}
#: One anchored departure: the zoo shapes are time queries.
ZOO_DEPARTURE = 480


def test_query_zoo_serving_throughput(report, benchops, scale):
    """Closed-loop QPS + latency for multicriteria, via and
    min-transfers through the production server path.

    Same harness and client discipline as the journey bench above, one
    served dataset, result cache off — so each request pays its real
    query cost and the recorded per-shape QPS/p99 trajectory gates the
    serving cost of the promoted shapes, not cache luck.  ``mixed``
    interleaves all three shapes per client, the realistic front-door
    blend (and the shape mix micro-batching must cope with:
    multicriteria groups, via and min-transfers dispatch singly).
    """
    timetable = make_instance(INSTANCE, scale)
    requests_per_client = ZOO_REQUESTS[scale]
    service = TransitService(timetable, CONFIG)
    rng = random.Random(11)
    stations = range(timetable.num_stations)
    triples = [
        tuple(rng.sample(stations, 3))
        for _ in range(CLIENTS * requests_per_client)
    ]

    def mc_call(backend, item):
        source, _, target = item
        answer = backend.multicriteria(source, target, departure=ZOO_DEPARTURE)
        assert answer.stats.kind == "multicriteria"

    def via_call(backend, item):
        source, via, target = item
        answer = backend.via(source, via, target, departure=ZOO_DEPARTURE)
        assert answer.stats.kind == "via"

    def mt_call(backend, item):
        source, _, target = item
        answer = backend.min_transfers(source, target, departure=ZOO_DEPARTURE)
        assert answer.stats.kind == "min_transfers"

    def mixed_call(backend, item):
        (mc_call, via_call, mt_call)[sum(item) % 3](backend, item)

    registry = DatasetRegistry.from_services({"bench": service})
    harness = ServerHarness(
        registry,
        workers=WORKERS,
        max_inflight=CLIENTS * 4,
        batch_window=BATCH_WINDOW,
        batch_max=BATCH_MAX,
        metrics=ServerMetrics(),
    )
    rows: dict[str, dict] = {}
    shapes = (
        ("multicriteria", mc_call),
        ("via", via_call),
        ("min_transfers", mt_call),
        ("mixed", mixed_call),
    )
    try:
        _drive(harness, triples[:CLIENTS], 2, call=mixed_call)  # warm-up
        for name, call in shapes:
            rows[name] = _drive(
                harness, triples, requests_per_client, call=call
            )
    finally:
        harness.close()

    table = format_table(
        ["shape", "reqs", "QPS", "p50 [ms]", "p99 [ms]"],
        [
            [
                name,
                str(rows[name]["requests"]),
                f"{rows[name]['qps']:.0f}",
                f"{rows[name]['p50_ms']:.1f}",
                f"{rows[name]['p99_ms']:.1f}",
            ]
            for name, _ in shapes
        ],
    )
    report.add(
        "server_throughput",
        f"[query zoo: scale={scale}, {CLIENTS} closed-loop clients, "
        f"{WORKERS} workers, {INSTANCE}]\n{table}\n",
    )
    benchops.add(
        "query_zoo",
        {
            "multicriteria_qps": rows["multicriteria"]["qps"],
            "via_qps": rows["via"]["qps"],
            "min_transfers_qps": rows["min_transfers"]["qps"],
            "mixed_qps": rows["mixed"]["qps"],
            "multicriteria_p99_ms": rows["multicriteria"]["p99_ms"],
            "via_p99_ms": rows["via"]["p99_ms"],
            "min_transfers_p99_ms": rows["min_transfers"]["p99_ms"],
        },
        config={
            "instance": INSTANCE,
            "clients": CLIENTS,
            "requests_per_client": requests_per_client,
            "workers": WORKERS,
            "departure": ZOO_DEPARTURE,
        },
    )

    # Every shape answered its full closed loop through the server.
    want = CLIENTS * requests_per_client
    for name, _ in shapes:
        assert rows[name]["requests"] == want, (name, rows[name])


# ---------------------------------------------------------------------------
# Fleet mode: N worker processes behind the routing gateway.
# ---------------------------------------------------------------------------

#: Fleet sizes swept (workers per gateway).
FLEET_SIZES = (1, 2, 4)
#: Requests per client per fleet size.
FLEET_REQUESTS = {"tiny": 15, "small": 25, "medium": 40}
#: Acceptance floors vs the 1-worker fleet, from the PR bar — asserted
#: only where the hardware can express process parallelism at all
#: (``cpu_count > workers``); always *recorded* either way.
FLEET_MIN_SPEEDUP = {2: 1.6, 4: 2.5}
#: Even on a starved box the gateway must not collapse throughput.
FLEET_SANITY_FLOOR = 0.3


def test_fleet_scaling_near_linear(
    report, benchops, scale, tmp_path_factory
):
    """QPS scaling 1 → 2 → 4 worker processes behind one gateway.

    This is the subsystem's reason to exist: ``TransitServer`` is one
    CPython process, so its query compute serializes on the GIL no
    matter how many threads it runs; worker *processes* each bring
    their own interpreter.  The workload is therefore the opposite of
    the micro-batching bench above: every pair forces a full search
    (at least one endpoint outside ``S_trans``, result cache off), so
    per-request CPU dwarfs the gateway's passthrough cost and the
    measurable ceiling is compute, not HTTP framing.
    """
    timetable = make_instance(INSTANCE, scale)
    requests_per_client = FLEET_REQUESTS[scale]
    service = TransitService(timetable, CONFIG)
    # Workers warm-start from one shared on-disk store — the fleet's
    # deployment shape (and mmap lets the OS share the pages).
    store = tmp_path_factory.mktemp("fleet-bench") / "bench"
    service.save(store)

    transfer = {int(s) for s in service.table.transfer_stations}
    outside = [
        s for s in range(timetable.num_stations) if s not in transfer
    ]
    rng = random.Random(7)
    pairs = []
    for _ in range(CLIENTS * requests_per_client):
        source = rng.choice(outside)  # never classifies "table"
        target = rng.randrange(timetable.num_stations)
        while target == source:
            target = rng.randrange(timetable.num_stations)
        pairs.append((source, target))

    rows: dict[int, dict] = {}
    for num_workers in FLEET_SIZES:
        fleet = FleetHarness(
            [store],
            num_workers,
            runtime_dir=tmp_path_factory.mktemp(f"fleet-{num_workers}w"),
            gateway_kwargs={"max_inflight": CLIENTS * 4},
        )
        try:
            _drive(fleet, pairs[:CLIENTS], 2)  # warm-up, unmeasured
            rows[num_workers] = _drive(fleet, pairs, requests_per_client)
        finally:
            fleet.close()

    base_qps = rows[FLEET_SIZES[0]]["qps"]
    cores = os.cpu_count() or 1
    table = format_table(
        ["workers", "reqs", "QPS", "speedup", "p50 [ms]", "p99 [ms]"],
        [
            [
                str(n),
                str(rows[n]["requests"]),
                f"{rows[n]['qps']:.0f}",
                f"{rows[n]['qps'] / base_qps:.2f}x",
                f"{rows[n]['p50_ms']:.1f}",
                f"{rows[n]['p99_ms']:.1f}",
            ]
            for n in FLEET_SIZES
        ],
    )
    report.add(
        "server_throughput",
        f"[fleet mode: scale={scale}, {CLIENTS} closed-loop clients, "
        f"full-search pairs, {cores} cores]\n{table}\n",
    )
    benchops.add(
        "fleet_scaling",
        {
            **{f"fleet_qps_{n}": rows[n]["qps"] for n in FLEET_SIZES},
            **{
                f"fleet_speedup_{n}": rows[n]["qps"] / base_qps
                for n in FLEET_SIZES[1:]
            },
            **{f"fleet_p50_ms_{n}": rows[n]["p50_ms"] for n in FLEET_SIZES},
        },
        config={
            "instance": INSTANCE,
            "clients": CLIENTS,
            "requests_per_client": requests_per_client,
            "fleet_sizes": list(FLEET_SIZES),
            "cpu_count": cores,
        },
    )

    for num_workers, floor in FLEET_MIN_SPEEDUP.items():
        speedup = rows[num_workers]["qps"] / base_qps
        if cores > num_workers:
            assert speedup >= floor, (
                f"{num_workers}-worker fleet reached only "
                f"{speedup:.2f}x the 1-worker QPS (need ≥{floor}x on "
                f"{cores} cores)"
            )
        else:
            # One interpreter per core is the whole premise; with
            # cpu_count <= workers there is no parallelism to measure.
            # The trajectory still records the (flat) curve.
            assert speedup >= FLEET_SANITY_FLOOR, (
                f"gateway collapsed throughput at {num_workers} workers: "
                f"{speedup:.2f}x (sanity floor {FLEET_SANITY_FLOOR}x)"
            )
