"""Closed-loop load test of the query server: micro-batched vs naive.

A fleet of closed-loop clients (each waits for its answer before
sending the next request) hammers one dataset's journey endpoint over
real TCP with persistent connections — each client is an
:class:`repro.client.HttpBackend` with a single pooled keep-alive
connection, i.e. the production SDK path, not a hand-rolled socket
loop.  The same workload runs against two servers that differ in
exactly one knob:

* **naive** — ``batch_window=0``: every request is its own worker-pool
  job (one-query-per-request dispatch);
* **micro** — concurrent journeys for the same dataset group into one
  :class:`~repro.query.batch.BatchQueryEngine` pass per collection
  window (the production default).

The workload is the distance-table serving shape: every pair has both
endpoints in ``S_trans``, so queries classify "table" and answer in
microseconds (both modes still pay full HTTP/JSON per request, which
bounds the measurable gap) — which is the paper's production regime (the table
exists precisely to make interactive queries sub-millisecond) and the
regime where per-request dispatch overhead, the thing micro-batching
removes, is the dominant cost.  Heavy uncached searches shrink the
*relative* gap toward the GIL-bound compute floor (micro still wins
there — measurably but by a few percent, too little to assert through
shared-runner noise).

Reported per mode: QPS plus client-side p50/p99 latency.  Asserted
(the PR's acceptance bar): micro-batched dispatch yields measurably
higher throughput than naive one-job-per-request dispatch.

Answers are not checked here (the e2e suite pins parity); the result
cache is disabled so both modes do identical work per request.
"""

from __future__ import annotations

import statistics
import threading
import time

from repro.analysis.formatting import format_table
from repro.client import HttpBackend, RetryPolicy
from repro.server import DatasetRegistry, ServerMetrics
from repro.service import ServiceConfig, TransitService
from repro.synthetic.instances import make_instance

from tests.server.harness import ServerHarness

INSTANCE = "oahu"
#: Closed-loop clients (each holds one keep-alive connection).
CLIENTS = 8
#: Requests per client per mode.
REQUESTS = {"tiny": 40, "small": 60, "medium": 80}
#: Worker threads per server.
WORKERS = 8
#: micro mode's collection window / size cap.
BATCH_WINDOW = 0.003
BATCH_MAX = 8
#: Acceptance floor: micro QPS must exceed naive QPS by this factor.
MIN_ADVANTAGE = 1.05

#: Distance table over half the stations: the benched pairs all
#: classify "table".  Result cache off: both modes pay every lookup,
#: so the measured gap is dispatch, not cache luck.
CONFIG = ServiceConfig(
    num_threads=1,
    result_cache_size=0,
    use_distance_table=True,
    transfer_fraction=0.5,
)


def _drive(harness: ServerHarness, pairs, requests_per_client) -> dict:
    """Run the closed loop; returns QPS + latency percentiles."""
    latencies: list[list[float]] = [[] for _ in range(CLIENTS)]
    barrier = threading.Barrier(CLIENTS + 1)

    def client(cid: int) -> None:
        # One backend per closed-loop client: a single persistent
        # keep-alive connection, retries off so every latency sample
        # is one exchange (max_inflight is sized to never 503 here).
        backend = HttpBackend(
            f"http://127.0.0.1:{harness.port}/bench",
            timeout=60,
            pool_size=1,
            retry=RetryPolicy(retries=0),
        )
        try:
            barrier.wait()
            for i in range(requests_per_client):
                source, target = pairs[(cid * requests_per_client + i) % len(pairs)]
                t0 = time.perf_counter()
                answer = backend.journey(source, target)
                latencies[cid].append(time.perf_counter() - t0)
                assert answer.source == source and answer.target == target
        finally:
            backend.close()

    threads = [
        threading.Thread(target=client, args=(cid,)) for cid in range(CLIENTS)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0

    flat = sorted(lat for per_client in latencies for lat in per_client)
    total = len(flat)
    return {
        "requests": total,
        "wall": wall,
        "qps": total / wall,
        "p50_ms": statistics.quantiles(flat, n=100)[49] * 1000,
        "p99_ms": statistics.quantiles(flat, n=100)[98] * 1000,
    }


def _bench_mode(service, pairs, requests_per_client, *, batch_window) -> dict:
    registry = DatasetRegistry.from_services({"bench": service})
    harness = ServerHarness(
        registry,
        workers=WORKERS,
        max_inflight=CLIENTS * 4,
        batch_window=batch_window,
        batch_max=BATCH_MAX,
        metrics=ServerMetrics(),
    )
    try:
        # Warm-up: JIT-free Python, but the first requests pay lazy
        # engine/kernel-mirror setup; keep them out of the measurement.
        _drive(harness, pairs[:CLIENTS], 2)
        row = _drive(harness, pairs, requests_per_client)
        micro = harness.server.metrics.snapshot()["micro_batching"]
        row["batches"] = micro["batches_total"]
        row["mean_batch"] = micro["mean_batch_size"] or 1.0
        return row
    finally:
        harness.close()


def test_micro_batching_beats_naive_dispatch(report, benchops, scale):
    import random

    timetable = make_instance(INSTANCE, scale)
    requests_per_client = REQUESTS[scale]
    service = TransitService(timetable, CONFIG)
    transfer = [int(s) for s in service.table.transfer_stations]
    rng = random.Random(3)
    pairs = [
        tuple(rng.sample(transfer, 2))
        for _ in range(CLIENTS * requests_per_client)
    ]

    naive = _bench_mode(
        service, pairs, requests_per_client, batch_window=0.0
    )
    micro = _bench_mode(
        service, pairs, requests_per_client, batch_window=BATCH_WINDOW
    )

    rows = [
        ("naive", naive),
        (f"micro ({BATCH_WINDOW * 1000:g} ms/{BATCH_MAX})", micro),
    ]
    table = format_table(
        ["dispatch", "reqs", "QPS", "p50 [ms]", "p99 [ms]", "mean batch"],
        [
            [
                name,
                str(row["requests"]),
                f"{row['qps']:.0f}",
                f"{row['p50_ms']:.1f}",
                f"{row['p99_ms']:.1f}",
                f"{row.get('mean_batch', 1.0):.2f}",
            ]
            for name, row in rows
        ],
    )
    report.add(
        "server_throughput",
        f"[scale={scale}, {CLIENTS} closed-loop clients, "
        f"{WORKERS} workers, {INSTANCE}]\n{table}\n",
    )
    benchops.add(
        "server_throughput",
        {
            "naive_qps": naive["qps"],
            "micro_qps": micro["qps"],
            "micro_advantage_speedup": micro["qps"] / naive["qps"],
            "naive_p50_ms": naive["p50_ms"],
            "naive_p99_ms": naive["p99_ms"],
            "micro_p50_ms": micro["p50_ms"],
            "micro_p99_ms": micro["p99_ms"],
            "micro_mean_batch": micro["mean_batch"],
        },
        config={
            "instance": INSTANCE,
            "clients": CLIENTS,
            "requests_per_client": requests_per_client,
            "workers": WORKERS,
            "batch_window": BATCH_WINDOW,
            "batch_max": BATCH_MAX,
        },
    )

    # Micro-batching must actually group under this concurrency...
    assert micro["mean_batch"] > 1.0, (
        f"no grouping happened (mean batch {micro['mean_batch']:.2f}) — "
        f"the comparison below would measure nothing"
    )
    # ...and grouping must buy throughput over one-job-per-request.
    assert micro["qps"] > naive["qps"] * MIN_ADVANTAGE, (
        f"micro-batched dispatch did not beat naive dispatch: "
        f"{micro['qps']:.0f} vs {naive['qps']:.0f} QPS "
        f"(need >{MIN_ADVANTAGE:.2f}x)"
    )
