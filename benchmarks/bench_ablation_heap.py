"""A-heap — ablation: priority-queue implementation (paper §5 uses a
binary heap).

Compares the addressable binary heap, an addressable 4-ary heap and the
lazy ``heapq`` wrapper on identical one-to-all SPCS workloads.  Settled
counts are identical by construction (same algorithm); only constants
differ — in CPython the C-implemented ``heapq`` usually wins, which the
report makes visible.
"""

from __future__ import annotations

from statistics import fmean

import pytest

from repro.analysis.formatting import format_table
from repro.core.spcs import spcs_profile_search
from repro.synthetic.workloads import random_sources

NUM_QUERIES = 3
INSTANCE = "washington"
QUEUES = ("binary", "4-ary", "lazy")

_rows: dict[str, dict] = {}


@pytest.mark.parametrize("queue", QUEUES)
def test_heap_variant(benchmark, graphs, report, benchops, queue):
    graph = graphs.graph(INSTANCE)
    sources = random_sources(graph.timetable, NUM_QUERIES, seed=6)

    def run():
        return [spcs_profile_search(graph, s, queue=queue) for s in sources]

    results = benchmark.pedantic(run, rounds=2, iterations=1)
    _rows[queue] = {
        "settled": fmean(r.stats.settled_connections for r in results),
        "mean_s": benchmark.stats["mean"],
    }
    if len(_rows) == len(QUEUES):
        rows = [
            [q, f"{_rows[q]['settled']:,.0f}", f"{_rows[q]['mean_s'] * 1000:.1f}"]
            for q in QUEUES
        ]
        table = format_table(["queue", "settled conns", "time [ms]"], rows)
        report.add("ablation_heap", f"[{INSTANCE}]\n{table}\n")
        benchops.add(
            "ablation_heap",
            {
                f"{q.replace('-', '_')}_ms": _rows[q]["mean_s"] * 1000
                for q in QUEUES
            },
            config={
                "instance": INSTANCE,
                "num_queries": NUM_QUERIES,
                "queues": list(QUEUES),
            },
        )
