"""F-part — partition strategy balance (paper §3.2, "Choice of the
Partition").

Measures, per strategy, the *work* imbalance (max thread settled count
over mean) and resulting simulated time on 8 cores.  Expected shape:
equal time-slots is clearly unbalanced (rush hours + night break),
equal #connections is near-balanced, k-means adds little — exactly the
paper's justification for the equal-#connections default.
"""

from __future__ import annotations

from statistics import fmean

import pytest

from repro.analysis.formatting import format_table
from repro.service import ProfileRequest, ServiceConfig, TransitService
from repro.synthetic.workloads import random_sources

NUM_QUERIES = 3
NUM_CORES = 8
STRATEGIES = ("equal-time-slots", "equal-connections", "kmeans")
INSTANCE = "losangeles"

_rows: dict[str, dict] = {}
_services: dict[str, TransitService] = {}


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_partition_strategy(benchmark, graphs, report, benchops, strategy):
    service = _services.get(strategy)
    if service is None:
        service = TransitService.from_graph(
            graphs.graph(INSTANCE),
            ServiceConfig(
                kernel="python", strategy=strategy, num_threads=NUM_CORES
            ),
        )
        _services[strategy] = service
    sources = random_sources(service.timetable, NUM_QUERIES, seed=4)

    def run():
        return [service.profile(ProfileRequest(s)) for s in sources]

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    def work_imbalance(stats):
        per_thread = stats.settled_per_thread
        mean = fmean(per_thread) if per_thread else 0.0
        return max(per_thread) / mean if mean else 1.0

    _rows[strategy] = {
        "imbalance": fmean(work_imbalance(r.raw.stats) for r in results),
        "time": fmean(r.stats.simulated_seconds for r in results),
        "settled": fmean(r.stats.settled_connections for r in results),
    }
    if len(_rows) == len(STRATEGIES):
        rows = [
            [
                s,
                f"{_rows[s]['imbalance']:.2f}",
                f"{_rows[s]['settled']:,.0f}",
                f"{_rows[s]['time'] * 1000:.1f}",
            ]
            for s in STRATEGIES
        ]
        table = format_table(
            ["strategy", "max/mean thread work", "settled conns", "time [ms]"],
            rows,
        )
        report.add("fig_partition_balance", f"[{INSTANCE}, p={NUM_CORES}]\n{table}\n")

        # Per-strategy wall time (gated) + work imbalance (recorded,
        # ungated — a balance shape, not a speed claim).
        metrics = {}
        for strategy_name, cell in _rows.items():
            slug = strategy_name.replace("-", "_")
            metrics[f"{slug}_ms"] = cell["time"] * 1000
            metrics[f"{slug}_imbalance"] = cell["imbalance"]
        benchops.add(
            "fig_partition_balance",
            metrics,
            config={
                "instance": INSTANCE,
                "num_queries": NUM_QUERIES,
                "cores": NUM_CORES,
                "strategies": list(STRATEGIES),
            },
        )
