"""Shared benchmark infrastructure.

Scale control: set ``REPRO_BENCH_SCALE`` to ``tiny`` (fast sanity run),
``small`` (default; reproduces the paper's table *shapes* in minutes) or
``medium`` (closer to paper ratios; manual runs).

Every bench records its paper-style rows through the session-scoped
``report`` fixture; at session end the assembled tables are printed and
written to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can
reference them.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.graph.td_model import build_td_graph
from repro.synthetic.instances import make_instance

RESULTS_DIR = Path(__file__).parent / "results"

#: Instances × core counts benched for Table 1 and the figures.
ALL_INSTANCES = ("oahu", "losangeles", "washington", "germany", "europe")
CORE_COUNTS = (1, 2, 4, 8)


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale not in ("tiny", "small", "medium"):
        raise ValueError(f"REPRO_BENCH_SCALE must be tiny/small/medium, got {scale!r}")
    return scale


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


class GraphCache:
    """Build each instance's graph once per session."""

    def __init__(self, scale: str) -> None:
        self._scale = scale
        self._graphs = {}

    def graph(self, instance: str):
        if instance not in self._graphs:
            timetable = make_instance(instance, self._scale)
            self._graphs[instance] = build_td_graph(timetable)
        return self._graphs[instance]


@pytest.fixture(scope="session")
def graphs(scale) -> GraphCache:
    return GraphCache(scale)


class Report:
    """Collects named result tables and flushes them at session end."""

    def __init__(self) -> None:
        self._sections: dict[str, list[str]] = {}

    def add(self, section: str, text: str) -> None:
        self._sections.setdefault(section, []).append(text)

    def flush(self) -> None:
        if not self._sections:
            return
        RESULTS_DIR.mkdir(exist_ok=True)
        for section, chunks in sorted(self._sections.items()):
            body = "\n".join(chunks)
            print(f"\n===== {section} =====\n{body}")
            (RESULTS_DIR / f"{section}.txt").write_text(body + "\n")


@pytest.fixture(scope="session")
def report():
    collector = Report()
    yield collector
    collector.flush()
