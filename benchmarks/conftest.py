"""Shared benchmark infrastructure.

Scale control: set ``REPRO_BENCH_SCALE`` to ``tiny`` (fast sanity run),
``small`` (default; reproduces the paper's table *shapes* in minutes) or
``medium`` (closer to paper ratios; manual runs).

Every bench records its paper-style rows through the session-scoped
``report`` fixture; at session end the assembled tables are printed and
written to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can
reference them.

Alongside the human tables, every bench emits a schema'd
:class:`repro.benchops.BenchRecord` through the session-scoped
``benchops`` fixture: key metrics (wall times, QPS, speed-ups) plus
machine fingerprint, git SHA, scale and config hash.  Records land as
pending files under ``benchmarks/records/`` (override with
``REPRO_BENCH_RECORDS_DIR``); ``repro-transit bench index`` folds them
into the repo-root ``BENCH_*.json`` trajectories and ``bench compare``
gates them against the last known-good run (docs/BENCHMARKS.md).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.benchops import BenchRecord, emit_record
from repro.graph.td_model import build_td_graph
from repro.synthetic.instances import make_instance

RESULTS_DIR = Path(__file__).parent / "results"
RECORDS_DIR = Path(
    os.environ.get(
        "REPRO_BENCH_RECORDS_DIR", str(Path(__file__).parent / "records")
    )
)

#: Instances × core counts benched for Table 1 and the figures.
ALL_INSTANCES = ("oahu", "losangeles", "washington", "germany", "europe")
CORE_COUNTS = (1, 2, 4, 8)


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale not in ("tiny", "small", "medium"):
        raise ValueError(f"REPRO_BENCH_SCALE must be tiny/small/medium, got {scale!r}")
    return scale


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


class GraphCache:
    """Build each instance's graph once per session."""

    def __init__(self, scale: str) -> None:
        self._scale = scale
        self._graphs = {}

    def graph(self, instance: str):
        if instance not in self._graphs:
            timetable = make_instance(instance, self._scale)
            self._graphs[instance] = build_td_graph(timetable)
        return self._graphs[instance]


@pytest.fixture(scope="session")
def graphs(scale) -> GraphCache:
    return GraphCache(scale)


class Report:
    """Collects named result tables and flushes them at session end."""

    def __init__(self) -> None:
        self._sections: dict[str, list[str]] = {}

    def add(self, section: str, text: str) -> None:
        self._sections.setdefault(section, []).append(text)

    def flush(self) -> None:
        if not self._sections:
            return
        RESULTS_DIR.mkdir(exist_ok=True)
        for section, chunks in sorted(self._sections.items()):
            body = "\n".join(chunks)
            print(f"\n===== {section} =====\n{body}")
            (RESULTS_DIR / f"{section}.txt").write_text(body + "\n")


@pytest.fixture(scope="session")
def report():
    collector = Report()
    yield collector
    collector.flush()


class BenchOpsCollector:
    """Collects one :class:`BenchRecord` per benchmark emit point and
    writes them as pending record files at session end."""

    def __init__(self, scale: str) -> None:
        self._scale = scale
        self._records: list[BenchRecord] = []

    def add(
        self, benchmark: str, metrics: dict[str, float], config: dict | None = None
    ) -> None:
        self._records.append(
            BenchRecord.capture(
                benchmark, scale=self._scale, metrics=metrics, config=config
            )
        )

    def flush(self) -> None:
        if not self._records:
            return
        paths = [emit_record(record, RECORDS_DIR) for record in self._records]
        print(
            f"\n{len(paths)} bench record(s) pending under {RECORDS_DIR} "
            f"— fold into trajectories with `repro-transit bench index`"
        )


@pytest.fixture(scope="session")
def benchops(scale):
    collector = BenchOpsCollector(scale)
    yield collector
    collector.flush()
